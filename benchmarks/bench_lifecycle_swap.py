"""Model-lifecycle swap: serving availability and warm-hit rate across a swap.

Not a paper figure — this measures the lifecycle subsystem added on top of the
paper's training loop.  The bench stands up the full serving stack (planner
service + model registry + background trainer + shadow gate) and then, while
``plan_many`` traffic hammers the service from a separate thread:

1. fine-tunes a clean candidate in the background, shadow-evaluates it, and
   hot-swaps it in (the gate must pass);
2. submits a sabotaged candidate (inverted prediction head — an injected
   regression) which the gate must reject, leaving the promoted version
   serving;
3. measures availability across the whole window (zero failed or dropped
   requests) and the post-swap warm-hit rate on the probe workload (the cache
   warmer must keep steady-state traffic on the warm path, >= 0.9).

Headline figures land in ``benchmark.extra_info`` so ``--benchmark-json``
artifacts expose them to CI.
"""

from __future__ import annotations

import os
import threading
import time

from benchmarks.conftest import run_once
from repro.costmodel.cout import CoutCostModel
from repro.lifecycle import BackgroundTrainer, ModelLifecycle, ModelRegistry, ShadowEvaluator
from repro.model.trainer import ValueNetworkTrainer
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.optimizer.quickpick import random_plan
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.utils.rng import derive_seed, new_rng
from repro.workloads.benchmark import make_job_benchmark

#: CI smoke mode (REPRO_BENCH_QUICK=1) shrinks the workload further.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

MIN_WARM_HIT_RATE = 0.9
MAX_REGRESSION = 1.3


def _make_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=5, top_k=3, enumerate_scan_operators=False)


def _collect_experience(bundle, queries, cost_model, plans_per_query: int):
    """Random plans labelled with cout costs (dense enough to learn ranking)."""
    examples, labels = [], []
    for query in queries:
        seen: set[str] = set()
        for index in range(plans_per_query):
            plan = random_plan(query, new_rng(derive_seed(0, query.name, index)))
            fingerprint = plan.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            examples.append(bundle.featurizer.featurize(query, plan))
            labels.append(cost_model.cost(query, plan))
    return examples, labels


def _train_serving(bundle, examples, labels) -> ValueNetwork:
    network = ValueNetwork(
        bundle.featurizer,
        ValueNetworkConfig(
            query_hidden=32, query_embedding=16, tree_channels=(32, 16),
            head_hidden=16, seed=0,
        ),
    )
    ValueNetworkTrainer(
        network, learning_rate=3e-3, max_epochs=60,
        validation_fraction=0.0, seed=0,
    ).fit(examples, labels)
    return network


def _sabotage(network: ValueNetwork) -> ValueNetwork:
    """A clone whose prediction order is inverted: an injected regression."""
    bad = network.clone()
    bad.head_fc2.weight.value = -bad.head_fc2.weight.value
    bad.head_fc2.bias.value = -bad.head_fc2.bias.value
    bad.bump_version()
    return bad


def _run_lifecycle_swap(scale) -> dict:
    num_queries = 8 if QUICK else scale.num_queries
    bundle = make_job_benchmark(
        fact_rows=scale.fact_rows,
        num_queries=num_queries,
        num_templates=min(scale.num_templates, num_queries),
        test_size=min(scale.test_size, max(num_queries - 2, 1)),
        seed=0,
        size_range=scale.size_range,
    )
    queries = list(bundle.train_queries)
    cost_model = CoutCostModel(bundle.environment().estimator)
    examples, labels = _collect_experience(
        bundle, queries, cost_model, plans_per_query=40
    )
    serving = _train_serving(bundle, examples, labels)

    service = PlannerService(serving, planner=_make_planner(), max_workers=4)
    registry = ModelRegistry()
    shadow = ShadowEvaluator(
        queries, cost_model.cost, max_regression=MAX_REGRESSION,
        planner=_make_planner(),
    )
    lifecycle = ModelLifecycle(
        service, registry, shadow, trainer=BackgroundTrainer(registry, max_epochs=2)
    )

    failures: list[BaseException] = []
    served: list = []
    stop = threading.Event()

    def traffic() -> None:
        while not stop.is_set():
            try:
                served.extend(service.plan_many(queries))
            except BaseException as error:  # noqa: BLE001 - measured, not hidden
                failures.append(error)
                return

    thread = threading.Thread(target=traffic)
    with service:
        lifecycle.baseline()
        thread.start()
        try:
            swap_started = time.perf_counter()
            clean_decision = lifecycle.advance(
                examples, labels, refit_label_transform=True
            )
            swap_seconds = time.perf_counter() - swap_started

            bad_snapshot = registry.register(_sabotage(serving), source="sabotaged")
            rejected_decision = lifecycle.evaluate_and_apply(bad_snapshot)
        finally:
            stop.set()
            thread.join()
        lifecycle.close()

        window_metrics = service.metrics()

        # Post-swap warm path: one pass over the probe workload, measured on
        # fresh counters so warm hits are attributable.
        service.reset_metrics()
        post = service.plan_many(queries)
        warm_hits = sum(response.cache_hit for response in post)
        warm_hit_rate = warm_hits / len(post)

    # The gate must pass the clean candidate and reject the sabotaged one,
    # the swap must be invisible to traffic, and the cache must stay warm.
    assert clean_decision.promoted, clean_decision.reason
    assert not rejected_decision.promoted, rejected_decision.reason
    assert registry.serving_version == clean_decision.candidate_version
    assert not failures, failures[:1]
    assert all(response.plans for response in served)
    assert window_metrics.swaps == 1
    assert window_metrics.promotions_rejected == 1
    assert warm_hit_rate >= MIN_WARM_HIT_RATE, warm_hit_rate

    dropped = sum(1 for response in served if not response.plans)
    return {
        "queries": len(queries),
        "experience_examples": len(examples),
        "requests_served": len(served) + len(post),
        "failed_requests": len(failures) + dropped,
        "availability": 1.0 if not failures and not dropped else 0.0,
        "swap_window_seconds": swap_seconds,
        "warm_hit_rate": warm_hit_rate,
        "warmed_entries": window_metrics.warmed_entries,
        "swaps": window_metrics.swaps,
        "promotions_rejected": window_metrics.promotions_rejected,
        "clean_max_regression": clean_decision.max_regression,
        "rejected_max_regression": rejected_decision.max_regression,
        "serving_version": registry.serving_version,
    }


def bench_lifecycle_swap(benchmark, scale):
    result = run_once(benchmark, _run_lifecycle_swap, scale)
    print()
    print(
        f"lifecycle swap: {result['requests_served']} requests served across a "
        f"hot swap, {result['failed_requests']} failed "
        f"(availability {result['availability']:.0%})"
    )
    print(
        f"train+shadow+swap+warm window: {result['swap_window_seconds']:.3f}s; "
        f"post-swap warm-hit rate {result['warm_hit_rate']:.2%} "
        f"({result['warmed_entries']} entries warmed)"
    )
    print(
        f"shadow gate: clean candidate max regression "
        f"{result['clean_max_regression']:.3f} (promoted, serving v"
        f"{result['serving_version']}), injected regression "
        f"{result['rejected_max_regression']:.3f} (rejected)"
    )
    for key, value in result.items():
        benchmark.extra_info[key] = round(float(value), 4)
