"""Experiment runners: one per table and figure of the paper's evaluation.

Every runner builds (or accepts) a :class:`~repro.workloads.benchmark.WorkloadBenchmark`,
trains the relevant agents and returns a plain dictionary of results that the
corresponding benchmark script under ``benchmarks/`` prints.  The
:class:`ExperimentScale` presets control how much work a run does:

- ``tiny``   — used by the benchmark suite; completes in seconds per runner.
- ``small``  — used by the examples; a few minutes end to end.
- ``paper``  — the paper-faithful sizes (113 queries, 500 iterations, 8 seeds);
  provided for completeness, not expected to be run in CI.

Absolute latencies are simulated; the quantities to compare against the paper
are the *shapes*: who wins, by roughly what factor, and how curves order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.agent.history import TrainingHistory
from repro.baselines.bao import BaoAgent
from repro.baselines.neo import NeoAgent
from repro.baselines.random_agent import RandomPlanAgent
from repro.cardinality.noise import NoisyEstimator
from repro.costmodel.cout import CoutCostModel
from repro.diversity.merge import (
    count_unique_plans,
    merge_agent_experiences,
    retrain_from_experience,
)
from repro.evaluation.metrics import (
    median_and_range,
    normalized_runtime,
    per_query_speedups,
    speedup,
    workload_runtime,
)
from repro.planning.envelope import PlanRequest
from repro.plans.analysis import JoinOperator, PlanShape
from repro.search.beam import BeamSearchPlanner
from repro.simulation.collect import collect_simulation_data
from repro.simulation.trainer import train_simulation_model
from repro.workloads.benchmark import (
    WorkloadBenchmark,
    make_job_benchmark,
    make_tpch_benchmark,
)


# ---------------------------------------------------------------------- #
# Scale presets
# ---------------------------------------------------------------------- #
@dataclass
class ExperimentScale:
    """Controls the size of every experiment.

    Attributes:
        name: Preset name.
        fact_rows: Base rows of the IMDb-like ``title`` table.
        tpch_rows: Base rows of the TPC-H ``orders`` table.
        num_queries: JOB-like workload size.
        num_templates: JOB-like template count.
        test_size: Test-set size for the random and slow splits.
        size_range: Min/max relations per JOB-like template.
        tpch_queries_per_template: Instances per TPC-H template.
        num_iterations: Real-execution training iterations per agent.
        num_seeds: Independent seeded runs aggregated per configuration.
        balsa: Factory producing the per-run Balsa configuration.
    """

    name: str
    fact_rows: int = 600
    tpch_rows: int = 400
    num_queries: int = 24
    num_templates: int = 8
    test_size: int = 5
    size_range: tuple[int, int] = (4, 7)
    tpch_queries_per_template: int = 3
    num_iterations: int = 8
    num_seeds: int = 1
    balsa: Callable[[int, int], BalsaConfig] = field(
        default=lambda seed, iterations: BalsaConfig.small(seed, iterations)
    )

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """The benchmark-suite preset (seconds per experiment)."""
        return cls(name="tiny")

    @classmethod
    def small(cls) -> "ExperimentScale":
        """The examples preset (minutes end to end)."""
        return cls(
            name="small",
            fact_rows=1500,
            tpch_rows=800,
            num_queries=48,
            num_templates=16,
            test_size=8,
            size_range=(3, 9),
            tpch_queries_per_template=5,
            num_iterations=20,
            num_seeds=2,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper-faithful preset (hours; provided for completeness)."""
        return cls(
            name="paper",
            fact_rows=8000,
            tpch_rows=3000,
            num_queries=113,
            num_templates=33,
            test_size=19,
            size_range=(4, 12),
            tpch_queries_per_template=10,
            num_iterations=500,
            num_seeds=8,
            balsa=lambda seed, iterations: replace(
                BalsaConfig.paper(seed), num_iterations=iterations
            ),
        )

    # ------------------------------------------------------------------ #
    # Benchmark and config construction
    # ------------------------------------------------------------------ #
    def benchmark(
        self, workload: str = "job", seed: int = 0, include_ext_job: bool = False
    ) -> WorkloadBenchmark:
        """Build a benchmark of this scale for ``workload``."""
        if workload in ("job", "job_slow", "job_slow_templates"):
            split = {"job": "random", "job_slow": "slow", "job_slow_templates": "slow_templates"}[
                workload
            ]
            return make_job_benchmark(
                split=split,
                fact_rows=self.fact_rows,
                num_queries=self.num_queries,
                num_templates=self.num_templates,
                test_size=self.test_size,
                seed=seed,
                size_range=self.size_range,
                include_ext_job=include_ext_job,
            )
        if workload == "tpch":
            return make_tpch_benchmark(
                base_rows=self.tpch_rows,
                queries_per_template=self.tpch_queries_per_template,
                seed=seed,
            )
        raise ValueError(f"unknown workload {workload!r}")

    def config(self, seed: int = 0, **overrides) -> BalsaConfig:
        """A Balsa config for one seeded run at this scale."""
        config = self.balsa(seed, self.num_iterations)
        return replace(config, **overrides) if overrides else config


# ---------------------------------------------------------------------- #
# Shared helpers
# ---------------------------------------------------------------------- #
def train_balsa_agent(
    benchmark: WorkloadBenchmark,
    config: BalsaConfig,
    expert: str = "postgres",
    agent_id: int = 0,
) -> BalsaAgent:
    """Train one Balsa agent against ``benchmark`` and return it."""
    runtimes = benchmark.expert_runtimes(expert=expert)
    agent = BalsaAgent(
        benchmark.environment(), config, expert_runtimes=runtimes, agent_id=agent_id
    )
    agent.train()
    return agent


def agent_speedups(
    agent: BalsaAgent, benchmark: WorkloadBenchmark, expert: str = "postgres"
) -> dict[str, float]:
    """Train- and test-set speedups of an agent over an expert."""
    expert_runtimes = benchmark.expert_runtimes(expert=expert)
    train_latencies = {
        name: latency
        for name, (_, latency) in agent.evaluate(benchmark.train_queries).items()
    }
    test_latencies = {
        name: latency
        for name, (_, latency) in agent.evaluate(benchmark.test_queries).items()
    }
    return {
        "train_speedup": speedup(train_latencies, expert_runtimes),
        "test_speedup": speedup(test_latencies, expert_runtimes),
        "train_runtime": workload_runtime(train_latencies),
        "test_runtime": workload_runtime(test_latencies),
    }


def _history_curves(history: TrainingHistory) -> dict[str, list[float]]:
    """Learning-curve series extracted from a training history."""
    return {
        "elapsed_hours": [m.elapsed_seconds / 3600.0 for m in history.iterations],
        "normalized_runtime": [
            m.normalized_runtime if m.normalized_runtime is not None else float("nan")
            for m in history.iterations
        ],
        "unique_plans": [float(m.unique_plans_seen) for m in history.iterations],
        "test_normalized_runtime": [
            m.test_normalized_runtime
            if m.test_normalized_runtime is not None
            else float("nan")
            for m in history.iterations
        ],
        "num_timeouts": [float(m.num_timeouts) for m in history.iterations],
    }


# ---------------------------------------------------------------------- #
# Unified-harness comparison: any registered planner, one loop
# ---------------------------------------------------------------------- #
def run_planner_comparison(
    scale: ExperimentScale | None = None,
    benchmark: WorkloadBenchmark | None = None,
    names: Sequence[str] | None = None,
    k: int = 1,
    registry=None,
) -> dict:
    """Compare registered planners under one harness.

    Every named planner answers the same :class:`PlanRequest` envelopes; the
    predicted-best plans run on the same simulated engine.  Executions run
    *without* a latency cap: the engine charges disastrous plans a pessimistic
    latency proportional to the exploded intermediate (a fixed cap would
    instead charge every guard-tripping query the identical full cap, erasing
    the differences this comparison exists to show).  Guard trips are counted
    per planner in ``timeouts``.  Pass a pre-built ``registry`` (e.g. one
    wired to trained agents) to control what each name resolves to; otherwise
    a fresh benchmark registry is used (untrained ``beam``/``bao``/``neo``).

    Returns:
        ``{"rows": [{"planner", "train_runtime", "test_runtime",
        "mean_planning_ms", "timeouts"}, ...]}``
    """
    scale = scale or ExperimentScale.tiny()
    benchmark = benchmark or scale.benchmark("job")
    registry = registry or benchmark.planner_registry(seed=0)
    names = list(names) if names is not None else registry.available()
    engine = benchmark.engine

    rows = []
    for name in names:
        planner = registry.get(name)
        planning_times: list[float] = []
        runtimes = {"train": 0.0, "test": 0.0}
        timeouts = 0
        for split, queries in (
            ("train", benchmark.train_queries),
            ("test", benchmark.test_queries),
        ):
            for query in queries:
                result = planner.plan(PlanRequest(query=query, k=k))
                planning_times.append(result.planning_seconds)
                execution = engine.execute(query, result.best_plan)
                runtimes[split] += execution.latency
                timeouts += int(execution.timed_out)
        rows.append(
            {
                "planner": name,
                "train_runtime": runtimes["train"],
                "test_runtime": runtimes["test"],
                "mean_planning_ms": 1000.0 * float(np.mean(planning_times)),
                "timeouts": timeouts,
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------- #
# §3 motivation: random agents vs simulation bootstrapping
# ---------------------------------------------------------------------- #
def run_random_vs_sim_bootstrap(
    scale: ExperimentScale | None = None,
    num_random_agents: int = 6,
    benchmark: WorkloadBenchmark | None = None,
) -> dict:
    """§3: random agents are 45–79x slower than the expert; sim-bootstrapped
    agents shrink that gap to single digits without any real execution."""
    scale = scale or ExperimentScale.tiny()
    benchmark = benchmark or scale.benchmark("job")
    expert_total = benchmark.expert_workload_runtime(benchmark.train_queries)
    cap = max(60.0, 100.0 * expert_total / max(len(benchmark.train_queries), 1))

    random_slowdowns = []
    for seed in range(num_random_agents):
        agent = RandomPlanAgent(benchmark.environment(), seed=seed)
        runtime = agent.workload_runtime(benchmark.train_queries, timeout=cap)
        random_slowdowns.append(runtime / expert_total)

    # A sim-bootstrapped agent: train V_sim, plan, execute once (no learning).
    config = scale.config(seed=0)
    agent = BalsaAgent(benchmark.environment(), config)
    agent.bootstrap_from_simulation()
    sim_latencies = {
        name: latency
        for name, (_, latency) in agent.evaluate(
            benchmark.train_queries, timeout=cap
        ).items()
    }
    sim_slowdown = workload_runtime(sim_latencies) / expert_total

    median, low, high = median_and_range(random_slowdowns)
    return {
        "random_slowdowns": random_slowdowns,
        "random_median_slowdown": median,
        "random_max_slowdown": high,
        "sim_bootstrap_slowdown": sim_slowdown,
        "expert_runtime": expert_total,
    }


# ---------------------------------------------------------------------- #
# Table 1: diversified experiences -> unique plans
# ---------------------------------------------------------------------- #
def run_table1_unique_plans(
    scale: ExperimentScale | None = None,
    agent_counts: Sequence[int] = (1, 2, 4),
    benchmark: WorkloadBenchmark | None = None,
) -> dict:
    """Table 1: number of unique plans after merging N agents' experiences."""
    scale = scale or ExperimentScale.tiny()
    benchmark = benchmark or scale.benchmark("job")
    max_agents = max(agent_counts)
    agents = [
        train_balsa_agent(benchmark, scale.config(seed=seed), agent_id=seed)
        for seed in range(max_agents)
    ]
    rows = []
    base = None
    for count in agent_counts:
        unique = count_unique_plans(agent.experience for agent in agents[:count])
        if base is None:
            base = unique
        rows.append(
            {"num_agents": count, "unique_plans": unique, "ratio": unique / max(base, 1)}
        )
    return {"rows": rows}


# ---------------------------------------------------------------------- #
# Table 2: simulation learning efficiency
# ---------------------------------------------------------------------- #
def run_table2_simulation_efficiency(
    scale: ExperimentScale | None = None,
    workloads: Sequence[str] = ("job", "job_slow", "tpch"),
) -> dict:
    """Table 2: simulation dataset sizes, collection time and training time."""
    scale = scale or ExperimentScale.tiny()
    rows = []
    for workload in workloads:
        benchmark = scale.benchmark(workload)
        config = scale.config(seed=0)
        dataset = collect_simulation_data(
            benchmark.train_queries,
            CoutCostModel(benchmark.estimator),
            skip_tables_above=config.sim_skip_tables_above,
            max_points_per_query=config.sim_max_points_per_query,
        )
        _, stats = train_simulation_model(
            dataset,
            benchmark.featurizer,
            network_config=config.network,
            max_epochs=config.sim_max_epochs,
            batch_size=config.batch_size,
        )
        rows.append(
            {
                "workload": workload,
                "dataset_size": stats.dataset_size,
                "collection_minutes": stats.collection_seconds / 60.0,
                "train_minutes": stats.train_seconds / 60.0,
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------- #
# Table 3: Balsa vs Bao
# ---------------------------------------------------------------------- #
def run_table3_balsa_vs_bao(
    scale: ExperimentScale | None = None,
    workloads: Sequence[str] = ("job", "job_slow"),
    bao_iterations: int | None = None,
) -> dict:
    """Table 3: Balsa vs Bao speedups w.r.t. the PostgreSQL-like expert."""
    scale = scale or ExperimentScale.tiny()
    rows = []
    for workload in workloads:
        benchmark = scale.benchmark(workload)
        expert_runtimes = benchmark.expert_runtimes()
        balsa = train_balsa_agent(benchmark, scale.config(seed=0))
        balsa_result = agent_speedups(balsa, benchmark)

        bao = BaoAgent(benchmark.environment(), benchmark.expert("postgres"), seed=0)
        bao.train(bao_iterations if bao_iterations is not None else scale.num_iterations)
        bao_train_runtime = bao.workload_runtime(benchmark.train_queries)
        bao_test_runtime = bao.workload_runtime(benchmark.test_queries)
        expert_train = benchmark.expert_workload_runtime(benchmark.train_queries)
        expert_test = benchmark.expert_workload_runtime(benchmark.test_queries)
        rows.append(
            {
                "workload": workload,
                "balsa_train_speedup": balsa_result["train_speedup"],
                "balsa_test_speedup": balsa_result["test_speedup"],
                "bao_train_speedup": expert_train / bao_train_runtime,
                "bao_test_speedup": expert_test / bao_test_runtime,
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------- #
# Figure 6: end-to-end speedups over both experts
# ---------------------------------------------------------------------- #
def run_figure6_speedups(
    scale: ExperimentScale | None = None,
    workloads: Sequence[str] = ("job", "job_slow", "tpch"),
    experts: Sequence[str] = ("postgres", "commdb"),
) -> dict:
    """Figure 6: Balsa's train/test workload speedups over both experts."""
    scale = scale or ExperimentScale.tiny()
    rows = []
    for workload in workloads:
        benchmark = scale.benchmark(workload)
        seed_results: dict[str, list[dict]] = {expert: [] for expert in experts}
        for seed in range(scale.num_seeds):
            agent = train_balsa_agent(benchmark, scale.config(seed=seed), agent_id=seed)
            for expert in experts:
                seed_results[expert].append(agent_speedups(agent, benchmark, expert=expert))
        for expert in experts:
            train_median, *_ = median_and_range(
                [r["train_speedup"] for r in seed_results[expert]]
            )
            test_median, *_ = median_and_range(
                [r["test_speedup"] for r in seed_results[expert]]
            )
            rows.append(
                {
                    "workload": workload,
                    "expert": expert,
                    "train_speedup": train_median,
                    "test_speedup": test_median,
                }
            )
    return {"rows": rows}


# ---------------------------------------------------------------------- #
# Figures 7 & 8: learning efficiency
# ---------------------------------------------------------------------- #
def run_figure7_learning_efficiency(
    scale: ExperimentScale | None = None,
    workloads: Sequence[str] = ("job", "tpch"),
    num_execution_nodes: int | None = None,
) -> dict:
    """Figure 7: normalised runtime vs elapsed time and vs unique plans seen."""
    scale = scale or ExperimentScale.tiny()
    curves = {}
    for workload in workloads:
        benchmark = scale.benchmark(workload)
        overrides = {}
        if num_execution_nodes is not None:
            overrides["num_execution_nodes"] = num_execution_nodes
        agent = train_balsa_agent(benchmark, scale.config(seed=0, **overrides))
        curves[workload] = _history_curves(agent.history)
        curves[workload]["time_to_match_expert_seconds"] = [
            agent.history.time_to_match_expert() or float("nan")
        ]
    return {"curves": curves}


def run_figure8_nonparallel(
    scale: ExperimentScale | None = None,
    workloads: Sequence[str] = ("job",),
) -> dict:
    """Figure 8: the same learning curves with a single execution node."""
    return run_figure7_learning_efficiency(scale, workloads, num_execution_nodes=1)


# ---------------------------------------------------------------------- #
# Figure 9: per-query speedups
# ---------------------------------------------------------------------- #
def run_figure9_per_query(
    scale: ExperimentScale | None = None,
    workload: str = "job",
) -> dict:
    """Figure 9: per-query speedup vs the expert's runtime, train and test."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark(workload)
    expert_runtimes = benchmark.expert_runtimes()
    agent = train_balsa_agent(benchmark, scale.config(seed=0))
    points = {}
    for split_name, queries in (
        ("train", benchmark.train_queries),
        ("test", benchmark.test_queries),
    ):
        latencies = {
            name: latency for name, (_, latency) in agent.evaluate(queries).items()
        }
        speedups = per_query_speedups(latencies, expert_runtimes)
        points[split_name] = [
            {
                "query": name,
                "expert_runtime": expert_runtimes[name],
                "speedup": speedups[name],
            }
            for name in latencies
        ]
    return {"points": points}


# ---------------------------------------------------------------------- #
# Figure 10: impact of the initial simulator
# ---------------------------------------------------------------------- #
def run_figure10_simulator_ablation(
    scale: ExperimentScale | None = None,
    variants: Sequence[str] = ("expert", "cout", "none"),
) -> dict:
    """Figure 10: expert simulator vs Balsa's C_out simulator vs no simulator."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    curves = {}
    for variant in variants:
        if variant == "none":
            config = scale.config(seed=0, use_simulation=False, simulator="none")
        else:
            config = scale.config(seed=0, simulator=variant)
        agent = train_balsa_agent(benchmark, config)
        curves[variant] = _history_curves(agent.history)
    return {"curves": curves}


# ---------------------------------------------------------------------- #
# Figure 11: impact of the timeout mechanism
# ---------------------------------------------------------------------- #
def run_figure11_timeout_ablation(scale: ExperimentScale | None = None) -> dict:
    """Figure 11: timeouts accelerate early learning and raise plan variety."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    curves = {}
    for variant, use_timeouts in (("timeout", True), ("no_timeout", False)):
        agent = train_balsa_agent(
            benchmark, scale.config(seed=0, use_timeouts=use_timeouts)
        )
        curves[variant] = _history_curves(agent.history)
    return {"curves": curves}


# ---------------------------------------------------------------------- #
# Figure 12: impact of exploration
# ---------------------------------------------------------------------- #
def run_figure12_exploration_ablation(
    scale: ExperimentScale | None = None,
    strategies: Sequence[str] = ("count", "epsilon", "none"),
) -> dict:
    """Figure 12: count-based safe exploration vs ε-greedy vs none."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    curves = {}
    for strategy in strategies:
        agent = train_balsa_agent(benchmark, scale.config(seed=0, exploration=strategy))
        curves[strategy] = _history_curves(agent.history)
    return {"curves": curves}


# ---------------------------------------------------------------------- #
# Figure 13: on-policy learning vs retraining
# ---------------------------------------------------------------------- #
def run_figure13_training_scheme(scale: ExperimentScale | None = None) -> dict:
    """Figure 13: on-policy updates vs full retraining every iteration."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    curves = {}
    for variant, on_policy in (("on_policy", True), ("retrain", False)):
        agent = train_balsa_agent(benchmark, scale.config(seed=0, on_policy=on_policy))
        curves[variant] = _history_curves(agent.history)
        curves[variant]["update_seconds"] = [
            m.update_seconds for m in agent.history.iterations
        ]
    return {"curves": curves}


# ---------------------------------------------------------------------- #
# Figure 14: planning time vs search parameters
# ---------------------------------------------------------------------- #
def run_figure14_planning_time(
    scale: ExperimentScale | None = None,
    beam_sizes: Sequence[int] = (1, 5, 10, 20),
    top_ks: Sequence[int] = (1, 5, 10),
) -> dict:
    """Figure 14: per-query planning time and runtime for (b, k) combinations."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    expert_runtimes = benchmark.expert_runtimes()
    agent = train_balsa_agent(benchmark, scale.config(seed=0))
    rows = []
    for beam_size in beam_sizes:
        for top_k in top_ks:
            planner = BeamSearchPlanner(
                beam_size=beam_size,
                top_k=top_k,
                enumerate_scan_operators=agent.config.enumerate_scan_operators,
            )
            planning_times = []
            latencies = {}
            for query in benchmark.test_queries:
                result = planner.search(query, agent.value_network)
                planning_times.append(result.planning_seconds)
                execution, _ = agent.environment.execute(
                    query, result.best_plan, timeout=agent.config.test_timeout
                )
                latencies[query.name] = execution.latency
            rows.append(
                {
                    "beam_size": beam_size,
                    "top_k": top_k,
                    "mean_planning_ms": 1000.0 * float(np.mean(planning_times)),
                    "normalized_runtime": normalized_runtime(latencies, expert_runtimes),
                }
            )
    return {"rows": rows}


# ---------------------------------------------------------------------- #
# Figure 15: comparison with learning from expert demonstrations (Neo)
# ---------------------------------------------------------------------- #
def run_figure15_neo_comparison(scale: ExperimentScale | None = None) -> dict:
    """Figure 15: Balsa vs Neo-impl training and test curves."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    expert_runtimes = benchmark.expert_runtimes()

    balsa = train_balsa_agent(benchmark, scale.config(seed=0))
    neo = NeoAgent(
        benchmark.environment(),
        benchmark.expert("postgres"),
        scale.config(seed=0),
        expert_runtimes=expert_runtimes,
    )
    neo.train()
    return {
        "curves": {
            "balsa": _history_curves(balsa.history),
            "neo_impl": _history_curves(neo.history),
        }
    }


# ---------------------------------------------------------------------- #
# Figure 16: diversified experiences
# ---------------------------------------------------------------------- #
def run_figure16_diversified(
    scale: ExperimentScale | None = None,
    workloads: Sequence[str] = ("job",),
    experts: Sequence[str] = ("postgres",),
    num_agents: int = 2,
) -> dict:
    """Figure 16: Balsa vs Balsa-Nx (retrained on merged experiences)."""
    scale = scale or ExperimentScale.tiny()
    rows = []
    for workload in workloads:
        benchmark = scale.benchmark(workload)
        expert_runtimes = benchmark.expert_runtimes()
        agents = [
            train_balsa_agent(benchmark, scale.config(seed=seed), agent_id=seed)
            for seed in range(num_agents)
        ]
        merged = merge_agent_experiences(agents)
        merged_agent = retrain_from_experience(
            benchmark.environment(),
            merged,
            scale.config(seed=100),
            expert_runtimes=expert_runtimes,
        )
        for expert in experts:
            base = agent_speedups(agents[0], benchmark, expert=expert)
            diversified = agent_speedups(merged_agent, benchmark, expert=expert)
            rows.append(
                {
                    "workload": workload,
                    "expert": expert,
                    "balsa_train_speedup": base["train_speedup"],
                    "balsa_test_speedup": base["test_speedup"],
                    "balsa_nx_train_speedup": diversified["train_speedup"],
                    "balsa_nx_test_speedup": diversified["test_speedup"],
                    "num_agents_merged": num_agents,
                }
            )
    return {"rows": rows}


# ---------------------------------------------------------------------- #
# Figure 17: generalising to Ext-JOB
# ---------------------------------------------------------------------- #
def run_figure17_extjob(
    scale: ExperimentScale | None = None, num_agents: int = 2
) -> dict:
    """Figure 17: out-of-distribution generalisation to Ext-JOB-like queries."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job", include_ext_job=True)
    ext_queries = benchmark.extra_queries["ext_job"]
    expert_runtimes = benchmark.expert_runtimes(
        list(benchmark.all_queries()) + list(ext_queries)
    )
    expert_ext = sum(expert_runtimes[q.name] for q in ext_queries)

    def ext_normalized(agent: BalsaAgent) -> float:
        latencies = {
            name: latency for name, (_, latency) in agent.evaluate(ext_queries).items()
        }
        return workload_runtime(latencies) / expert_ext

    balsa_agents = [
        train_balsa_agent(benchmark, scale.config(seed=seed), agent_id=seed)
        for seed in range(num_agents)
    ]
    neo = NeoAgent(
        benchmark.environment(),
        benchmark.expert("postgres"),
        scale.config(seed=0),
        expert_runtimes=expert_runtimes,
    )
    neo.train()

    merged = merge_agent_experiences(balsa_agents)
    balsa_nx = retrain_from_experience(
        benchmark.environment(), merged, scale.config(seed=100), expert_runtimes
    )
    balsa_1x = retrain_from_experience(
        benchmark.environment(),
        balsa_agents[0].experience,
        scale.config(seed=101),
        expert_runtimes,
    )
    return {
        "ext_job_normalized_runtime": {
            "balsa": ext_normalized(balsa_agents[0]),
            "neo_impl": ext_normalized(neo),
            "balsa_1x": ext_normalized(balsa_1x),
            "balsa_nx": ext_normalized(balsa_nx),
        },
        "num_agents_merged": num_agents,
    }


# ---------------------------------------------------------------------- #
# Figure 18: learned behaviours (operators and plan shapes)
# ---------------------------------------------------------------------- #
def run_figure18_behaviors(scale: ExperimentScale | None = None) -> dict:
    """Figure 18: operator / plan-shape composition over training iterations."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    agent = train_balsa_agent(benchmark, scale.config(seed=0))

    series: dict[str, list[float]] = {
        "merge_join": [],
        "nested_loop": [],
        "hash_join": [],
        "bushy": [],
        "left_deep": [],
    }
    for metrics in agent.history.iterations:
        composition = metrics.composition
        if composition is None:
            continue
        series["merge_join"].append(composition.join_fractions[JoinOperator.MERGE_JOIN])
        series["nested_loop"].append(composition.join_fractions[JoinOperator.NESTED_LOOP])
        series["hash_join"].append(composition.join_fractions[JoinOperator.HASH_JOIN])
        series["bushy"].append(composition.shape_fractions[PlanShape.BUSHY])
        series["left_deep"].append(composition.shape_fractions[PlanShape.LEFT_DEEP])

    # Expert reference composition (dashed lines in the paper's figure).
    from repro.plans.analysis import operator_composition

    expert_plans = [
        benchmark.expert_plan_and_latency(q)[0] for q in benchmark.train_queries
    ]
    expert = operator_composition(expert_plans)
    return {
        "series": series,
        "expert": {
            "merge_join": expert.join_fractions[JoinOperator.MERGE_JOIN],
            "nested_loop": expert.join_fractions[JoinOperator.NESTED_LOOP],
            "hash_join": expert.join_fractions[JoinOperator.HASH_JOIN],
            "bushy": expert.shape_fractions[PlanShape.BUSHY],
            "left_deep": expert.shape_fractions[PlanShape.LEFT_DEEP],
        },
    }


# ---------------------------------------------------------------------- #
# Extra ablation: estimator noise (paper §10, footnote 11)
# ---------------------------------------------------------------------- #
def run_estimator_noise_ablation(
    scale: ExperimentScale | None = None,
    noise_factors: Sequence[float] = (1.0, 5.0),
) -> dict:
    """§10: dividing cardinality estimates by ~5x noise barely affects Balsa."""
    scale = scale or ExperimentScale.tiny()
    benchmark = scale.benchmark("job")
    rows = []
    for factor in noise_factors:
        environment = benchmark.environment()
        if factor > 1.0:
            environment.estimator = NoisyEstimator(
                benchmark.estimator, median_factor=factor, seed=7
            )
        runtimes = benchmark.expert_runtimes()
        agent = BalsaAgent(environment, scale.config(seed=0), expert_runtimes=runtimes)
        agent.train()
        result = agent_speedups(agent, benchmark)
        rows.append(
            {
                "noise_factor": factor,
                "train_speedup": result["train_speedup"],
                "test_speedup": result["test_speedup"],
            }
        )
    return {"rows": rows}
