"""Learned-optimizer baselines the paper compares against (§8.4).

- :class:`~repro.baselines.neo.NeoAgent` — "Neo-impl": learns from expert
  demonstrations, retrains its value network from scratch on all experience
  every iteration, and uses none of Balsa's safety machinery.
- :class:`~repro.baselines.bao.BaoAgent` — Bao: steers the expert optimizer by
  choosing a hint set (operator subset) per query.
- :class:`~repro.baselines.random_agent.RandomPlanAgent` — randomly
  initialised agents that emit random valid plans, used by the §3 motivation
  experiment.
"""

from repro.baselines.neo import NeoAgent
from repro.baselines.bao import BaoAgent
from repro.baselines.random_agent import RandomPlanAgent

__all__ = ["NeoAgent", "BaoAgent", "RandomPlanAgent"]
