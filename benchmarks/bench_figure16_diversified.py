"""Figure 16: enhancing generalisation with diversified experiences (Balsa-Nx).

Paper: retraining on the merged experience of 8 agents improves train and test
speedups in almost all cases (sometimes by 60-80%) without any new query
executions.  The shape to check: Balsa-Nx's test speedup is competitive with
(not far below) the single agent's.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_figure16_diversified(benchmark, scale):
    result = run_once(
        benchmark,
        experiments.run_figure16_diversified,
        scale,
        workloads=("job",),
        experts=("postgres",),
        num_agents=2,
    )
    print()
    print(
        format_table(
            ["workload", "expert", "balsa train", "balsa test", "balsa-Nx train", "balsa-Nx test"],
            [
                [
                    r["workload"],
                    r["expert"],
                    r["balsa_train_speedup"],
                    r["balsa_test_speedup"],
                    r["balsa_nx_train_speedup"],
                    r["balsa_nx_test_speedup"],
                ]
                for r in result["rows"]
            ],
            title="Figure 16: Balsa vs Balsa-Nx (diversified experiences)",
        )
    )
    assert all(r["balsa_nx_train_speedup"] > 0 for r in result["rows"])
