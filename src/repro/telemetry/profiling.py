"""Continuous low-overhead sampling profiler (the watchtower's CPU eyes).

A daemon thread wakes ``hz`` times per second, walks every live thread's
stack via :func:`sys._current_frames`, and folds each stack into a
``frame;frame;frame -> count`` table (Brendan Gregg's folded-stack format,
root first).  Sampling is wall-clock: a thread parked in a lock or a
``select`` shows up exactly as often as one spinning in a hot loop, which
is what a serving system wants — the profile answers "where is time
spent", not "where are instructions retired".

Every gateway worker and every scorer process runs one profiler.  Profiles
are plain JSON dicts, so they cross process boundaries through the
existing telemetry push frames (sharded fleet) or atomic spool-dir files
(scorer pool), merge with :func:`merge_profiles`, and render as a
flamegraph-ready tree with :func:`flamegraph_from_profile`.

The profiler is process-global and refcounted: each subsystem that wants
profiling calls :func:`start_profiler` and pairs it with
:func:`stop_profiler`; the sampling thread starts with the first acquire
and stops with the last release, so co-resident gateways (tests) share one
thread instead of stacking them.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Callable

__all__ = [
    "SamplingProfiler",
    "flamegraph_from_profile",
    "get_profiler",
    "merge_profiles",
    "start_profiler",
    "stop_profiler",
    "write_profile_atomic",
]

DEFAULT_HZ = 67.0
"""Default sampling rate.

Deliberately off the round 50/100 marks so the sampler does not beat
against timers that fire on decimal boundaries (the classic lockstep-bias
failure mode of fixed-rate profilers).
"""

MAX_DISTINCT_STACKS = 4096
"""Bound on the folded-stack table; overflow folds into ``<overflow>``."""

_ENV_DISABLE = "REPRO_PROFILE"
_ENV_HZ = "REPRO_PROFILE_HZ"


def profiling_disabled_by_env() -> bool:
    """True when ``REPRO_PROFILE=0`` asks for no sampling threads at all."""
    return os.environ.get(_ENV_DISABLE, "1") in {"0", "false", "no"}


def hz_from_env(default: float = DEFAULT_HZ) -> float:
    """Sampling rate override from ``REPRO_PROFILE_HZ`` (falls back quietly)."""
    raw = os.environ.get(_ENV_HZ)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


class SamplingProfiler:
    """Folded-stack wall-clock sampler over ``sys._current_frames``.

    Args:
        hz: Target samples per second (per pass over all threads).
        process: Label recorded in snapshots (e.g. ``"gateway-w0"``,
            ``"scorer-2"``) so merged fleet profiles stay attributable.
        max_depth: Frames kept per stack, innermost dropped beyond it.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        *,
        hz: float = DEFAULT_HZ,
        process: str | None = None,
        max_depth: int = 48,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.hz = float(hz)
        self.process = process or f"pid-{os.getpid()}"
        self.max_depth = int(max_depth)
        self._clock = clock
        self._lock = threading.Lock()
        self._stacks: dict[str, int] = {}
        self._samples = 0
        self._threads_seen = 0
        self._started_at: float | None = None
        self._active_seconds = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._started_at = self._clock()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop the sampling thread; the aggregated profile is retained."""
        with self._lock:
            thread = self._thread
            self._thread = None
            if self._started_at is not None:
                self._active_seconds += max(self._clock() - self._started_at, 0.0)
                self._started_at = None
        self._stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def clear(self) -> None:
        """Drop all aggregated samples (the thread keeps running)."""
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._threads_seen = 0
            self._active_seconds = 0.0
            if self._started_at is not None:
                self._started_at = self._clock()

    # -- sampling ----------------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        next_tick = self._clock() + interval
        while not self._stop.wait(max(next_tick - self._clock(), 0.0)):
            next_tick += interval
            # A long GC pause or suspend can leave next_tick far in the
            # past; resync instead of burst-sampling to catch up.
            now = self._clock()
            if next_tick < now:
                next_tick = now + interval
            self.sample_once()

    def sample_once(self) -> int:
        """Take one pass over all live threads; returns threads sampled."""
        own = threading.get_ident()
        frames = sys._current_frames()
        folded: list[str] = []
        for ident, frame in frames.items():
            if ident == own:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(
                    f"{os.path.basename(code.co_filename)}:{code.co_name}"
                )
                frame = frame.f_back
                depth += 1
            if stack:
                folded.append(";".join(reversed(stack)))
        del frames
        with self._lock:
            self._samples += 1
            self._threads_seen += len(folded)
            for key in folded:
                if key in self._stacks:
                    self._stacks[key] += 1
                elif len(self._stacks) < MAX_DISTINCT_STACKS:
                    self._stacks[key] = 1
                else:
                    self._stacks["<overflow>"] = (
                        self._stacks.get("<overflow>", 0) + 1
                    )
        return len(folded)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe profile: folded stacks plus sampling bookkeeping."""
        with self._lock:
            active = self._active_seconds
            if self._started_at is not None:
                active += max(self._clock() - self._started_at, 0.0)
            return {
                "process": self.process,
                "hz": self.hz,
                "samples": self._samples,
                "threads_sampled": self._threads_seen,
                "duration_seconds": active,
                "stacks": dict(self._stacks),
            }


def merge_profiles(profiles: list[dict]) -> dict:
    """Merge per-process profiles into one fleet-wide folded-stack table.

    Counts sum per folded stack; ``samples``/``threads_sampled``/
    ``duration_seconds`` sum; contributing process labels are listed.
    Entries that are not profile-shaped dicts are skipped rather than
    poisoning the merge (a worker mid-restart may push a partial frame).
    """
    merged_stacks: dict[str, int] = {}
    samples = 0
    threads = 0
    duration = 0.0
    processes: list[str] = []
    for profile in profiles:
        if not isinstance(profile, dict):
            continue
        stacks = profile.get("stacks")
        if not isinstance(stacks, dict):
            continue
        for key, count in stacks.items():
            if isinstance(count, (int, float)):
                merged_stacks[key] = merged_stacks.get(key, 0) + int(count)
        samples += int(profile.get("samples", 0) or 0)
        threads += int(profile.get("threads_sampled", 0) or 0)
        duration += float(profile.get("duration_seconds", 0.0) or 0.0)
        process = profile.get("process")
        if isinstance(process, str) and process not in processes:
            processes.append(process)
    return {
        "processes": processes,
        "samples": samples,
        "threads_sampled": threads,
        "duration_seconds": duration,
        "stacks": merged_stacks,
    }


def flamegraph_from_profile(profile: dict) -> dict:
    """Fold a profile into the nested ``{name, value, children}`` tree that
    d3-flame-graph / speedscope-style renderers consume directly."""
    root: dict = {"name": "all", "value": 0, "children": {}}
    stacks = profile.get("stacks", {})
    if isinstance(stacks, dict):
        for stack, count in stacks.items():
            if not isinstance(count, (int, float)) or count <= 0:
                continue
            count = int(count)
            root["value"] += count
            node = root
            for frame in str(stack).split(";"):
                children: dict = node["children"]
                child = children.get(frame)
                if child is None:
                    child = {"name": frame, "value": 0, "children": {}}
                    children[frame] = child
                child["value"] += count
                node = child

    def _listify(node: dict) -> dict:
        children = [
            _listify(child)
            for child in sorted(
                node["children"].values(),
                key=lambda c: (-c["value"], c["name"]),
            )
        ]
        out = {"name": node["name"], "value": node["value"]}
        if children:
            out["children"] = children
        return out

    return _listify(root)


def write_profile_atomic(profile: dict, path: str) -> None:
    """Write a profile JSON file atomically (tmp + rename) so concurrent
    readers never observe a torn file — the scorer spool-dir transport."""
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(profile, handle)
    os.replace(tmp, path)


# -- process-global refcounted profiler -----------------------------------

_global_lock = threading.Lock()
_global_profiler: SamplingProfiler | None = None
_global_refs = 0


def start_profiler(
    *, hz: float | None = None, process: str | None = None
) -> SamplingProfiler | None:
    """Acquire the process-global profiler (starting it on first acquire).

    Returns ``None`` when ``REPRO_PROFILE=0`` disables sampling.  ``hz``
    and ``process`` only take effect for the acquire that creates the
    profiler; later acquires share the running instance.
    """
    global _global_profiler, _global_refs
    if profiling_disabled_by_env():
        return None
    with _global_lock:
        if _global_profiler is None:
            _global_profiler = SamplingProfiler(
                hz=hz_from_env(hz if hz is not None else DEFAULT_HZ),
                process=process,
            )
        _global_refs += 1
        _global_profiler.start()
        return _global_profiler


def stop_profiler() -> None:
    """Release one acquire; the sampling thread stops at refcount zero."""
    global _global_profiler, _global_refs
    with _global_lock:
        if _global_refs > 0:
            _global_refs -= 1
        if _global_refs == 0 and _global_profiler is not None:
            _global_profiler.stop()
            _global_profiler = None


def get_profiler() -> SamplingProfiler | None:
    """The process-global profiler, if one is currently acquired."""
    return _global_profiler
