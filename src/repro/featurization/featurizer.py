"""Bundled query+plan featurisation and batching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cardinality.base import CardinalityEstimator
from repro.catalog.schema import Schema
from repro.featurization.plan_encoder import FlattenedPlan, PlanEncoder
from repro.featurization.query_encoder import QueryEncoder
from repro.nn.tree_conv import TreeBatch
from repro.plans.nodes import PlanNode
from repro.sql.query import Query


@dataclass
class FeaturizedExample:
    """One featurised (query, plan) pair.

    Attributes:
        query_encoding: The query's selectivity vector.
        plan: The flattened plan node table.
    """

    query_encoding: np.ndarray
    plan: FlattenedPlan


class QueryPlanFeaturizer:
    """Featurises (query, plan) pairs and batches them for the value network.

    Args:
        schema: Database schema.
        estimator: Cardinality estimator used for query selectivities.
    """

    def __init__(self, schema: Schema, estimator: CardinalityEstimator, cache_size: int = 200_000):
        self.schema = schema
        self.query_encoder = QueryEncoder(schema, estimator)
        self.plan_encoder = PlanEncoder(schema)
        # Featurisation is pure; beam search and training revisit the same
        # subplans constantly, so cache by (query, plan fingerprint).
        self._cache: dict[tuple[str, str], FeaturizedExample] = {}
        self._cache_size = cache_size

    @property
    def query_dimension(self) -> int:
        """Dimensionality of the query encoding."""
        return self.query_encoder.dimension

    def signature(self) -> tuple:
        """Hashable identity of this featuriser's input space.

        Two featurisers with equal signatures produce interchangeable
        encodings: same schema, same dimensionalities.  Model snapshots embed
        the signature so weights trained against one featurisation are never
        silently loaded into a network wired to another.
        """
        return (
            "qpf-v1",
            getattr(self.schema, "name", ""),
            tuple(sorted(self.schema.tables)),
            self.query_dimension,
            self.plan_node_dimension,
        )

    @property
    def plan_node_dimension(self) -> int:
        """Dimensionality of one plan-node feature vector."""
        return self.plan_encoder.node_dimension

    def featurize(self, query: Query, plan: PlanNode) -> FeaturizedExample:
        """Featurise one (query, plan) pair (cached)."""
        key = (query.name, plan.fingerprint())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        example = FeaturizedExample(
            query_encoding=self.query_encoder.encode(query),
            plan=self.plan_encoder.flatten(plan, dict(query.alias_to_table)),
        )
        if len(self._cache) < self._cache_size:
            self._cache[key] = example
        return example

    def batch(
        self, examples: Sequence[FeaturizedExample]
    ) -> tuple[np.ndarray, TreeBatch]:
        """Pad and stack featurised examples into network inputs.

        Args:
            examples: Featurised (query, plan) pairs.

        Returns:
            ``(query_batch, tree_batch)`` where ``query_batch`` has shape
            ``(batch, query_dim)`` and ``tree_batch`` holds the padded plan
            node tables.
        """
        if not examples:
            raise ValueError("cannot batch zero examples")
        batch_size = len(examples)
        max_slots = max(example.plan.features.shape[0] for example in examples)
        node_dim = self.plan_node_dimension
        features = np.zeros((batch_size, max_slots, node_dim), dtype=np.float64)
        left = np.zeros((batch_size, max_slots), dtype=np.int64)
        right = np.zeros((batch_size, max_slots), dtype=np.int64)
        valid = np.zeros((batch_size, max_slots), dtype=bool)
        queries = np.zeros((batch_size, self.query_dimension), dtype=np.float64)
        for i, example in enumerate(examples):
            slots = example.plan.features.shape[0]
            features[i, :slots] = example.plan.features
            left[i, :slots] = example.plan.left
            right[i, :slots] = example.plan.right
            valid[i, 1 : example.plan.num_nodes + 1] = True
            queries[i] = example.query_encoding
        return queries, TreeBatch(features=features, left=left, right=right, valid=valid)
