"""Simulated execution engine.

This package replaces PostgreSQL / "CommDB" as the environment Balsa learns
from.  Plans are *actually executed* against the in-memory column store: scans
apply filter predicates, joins compute true matching row combinations, and the
engine converts the operator work into a deterministic latency via
:class:`~repro.execution.latency.LatencyModel`.

Because the work depends on true intermediate cardinalities and the physical
operators chosen, the environment exhibits the properties Balsa's learning
signal relies on: join-order sensitivity, index-vs-scan trade-offs and
catastrophic (orders-of-magnitude slower) plans, which timeouts then cut short
(paper §4.3).
"""

from repro.execution.engine import ExecutionEngine, ExecutionResult
from repro.execution.latency import LatencyModel
from repro.execution.plan_cache import PlanCache
from repro.execution.hints import HintSet, STANDARD_HINT_SETS
from repro.execution.cluster import ExecutionCluster

__all__ = [
    "ExecutionEngine",
    "ExecutionResult",
    "LatencyModel",
    "PlanCache",
    "HintSet",
    "STANDARD_HINT_SETS",
    "ExecutionCluster",
]
