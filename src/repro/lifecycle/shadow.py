"""Shadow evaluation: gate candidate models on evidence, not hope.

A freshly fine-tuned value network can regress badly on individual queries
(Neo, VLDB 2019), so promotion must be earned.  The :class:`ShadowEvaluator`
replans a *probe workload* with both the serving and the candidate model —
each resolved as a versioned planner through the ordinary planner registry
(``"beam@v3"``-style names) — costs the chosen plans under one shared
yardstick, and only approves the candidate when the regression bounds hold:

- no single probe query's plan may cost more than ``max_regression`` times
  the serving plan, and
- the candidate's total probe cost may not exceed ``max_total_regression``
  times the serving total.

Every evaluation produces a :class:`PromotionDecision` — the audit record the
:class:`~repro.lifecycle.registry.ModelRegistry` keeps so "why is version 7
serving?" always has an answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.lifecycle.snapshot import LifecycleError
from repro.model.value_network import ValueNetwork
from repro.planning.adapters import register_versioned_network
from repro.planning.envelope import PlanRequest
from repro.planning.registry import PlannerRegistry
from repro.plans.nodes import PlanNode
from repro.search.beam import BeamSearchPlanner
from repro.sql.query import Query

#: A shared plan yardstick: ``(query, plan) -> cost``.
PlanCost = Callable[[Query, PlanNode], float]


@dataclass(frozen=True)
class ProbeResult:
    """One probe query's serving-vs-candidate comparison.

    Attributes:
        query_name: The probe query.
        serving_cost: Yardstick cost of the serving model's chosen plan.
        candidate_cost: Yardstick cost of the candidate model's chosen plan.
        regression: ``candidate_cost / serving_cost`` (> 1 is a regression).
    """

    query_name: str
    serving_cost: float
    candidate_cost: float
    regression: float


@dataclass
class PromotionDecision:
    """The audit record of one shadow evaluation.

    Attributes:
        candidate_version: Registry version of the evaluated candidate.
        serving_version: Registry version it was compared against.
        promoted: Whether the gate approved the candidate.
        reason: Human-readable verdict (which bound failed, or "passed").
        probes: Per-query comparisons.
        max_regression: Worst per-query regression observed.
        regression_threshold: The per-query bound that was enforced.
        total_regression: Candidate total probe cost / serving total.
        total_threshold: The workload-level bound that was enforced.
        created_at: ``time.time()`` when the decision was made.
    """

    candidate_version: int | None
    serving_version: int | None
    promoted: bool
    reason: str
    probes: list[ProbeResult] = field(default_factory=list)
    max_regression: float = 0.0
    regression_threshold: float = 0.0
    total_regression: float = 0.0
    total_threshold: float = 0.0
    created_at: float = field(default_factory=time.time)

    @property
    def worst_probe(self) -> ProbeResult | None:
        """The probe with the largest regression (None without probes)."""
        return max(self.probes, key=lambda p: p.regression) if self.probes else None

    def to_json_dict(self) -> dict:
        """JSON-safe dict form (see :mod:`repro.server.wire`)."""
        from repro.server.wire import promotion_decision_to_json_dict

        return promotion_decision_to_json_dict(self)

    @classmethod
    def from_json_dict(cls, payload: object) -> "PromotionDecision":
        """Decode :meth:`to_json_dict` output; ``WireFormatError`` on bad input."""
        from repro.server.wire import promotion_decision_from_json_dict

        return promotion_decision_from_json_dict(payload)

    def format_report(self) -> str:
        """A short human-readable summary of the decision."""
        verdict = "PROMOTED" if self.promoted else "REJECTED"
        lines = [
            f"candidate v{self.candidate_version} vs serving "
            f"v{self.serving_version}: {verdict} ({self.reason})",
            f"probes={len(self.probes)} max_regression={self.max_regression:.3f} "
            f"(bound {self.regression_threshold:.3f}) "
            f"total_regression={self.total_regression:.3f} "
            f"(bound {self.total_threshold:.3f})",
        ]
        worst = self.worst_probe
        if worst is not None:
            lines.append(
                f"worst probe {worst.query_name}: {worst.serving_cost:.1f} -> "
                f"{worst.candidate_cost:.1f} ({worst.regression:.3f}x)"
            )
        return "\n".join(lines)


class ShadowEvaluator:
    """Replans a probe workload with candidate vs serving and applies bounds.

    Args:
        probe_queries: The known workload to shadow-plan (typically the
            training queries — the same set the cache warmer replays).
        plan_cost: Shared yardstick ``(query, plan) -> cost`` (e.g.
            ``CoutCostModel(estimator).cost``).  Both models' chosen plans
            are costed with it, so the comparison never trusts either
            model's own predictions.
        max_regression: Per-query bound: candidate cost may not exceed this
            multiple of the serving cost on any probe.
        max_total_regression: Workload bound on total probe cost.
        planner: Beam-search configuration used for both sides (defaults to
            paper settings).
        planner_registry: Registry the versioned planners are registered
            into (``"beam@v<N>"``); a private one is created when omitted.
    """

    def __init__(
        self,
        probe_queries: Sequence[Query],
        plan_cost: PlanCost,
        max_regression: float = 1.5,
        max_total_regression: float = 1.1,
        planner: BeamSearchPlanner | None = None,
        planner_registry: PlannerRegistry | None = None,
    ):
        self.probe_queries = list(probe_queries)
        if not self.probe_queries:
            raise ValueError("shadow evaluation needs at least one probe query")
        if max_regression <= 0 or max_total_regression <= 0:
            raise ValueError("regression bounds must be positive")
        self.plan_cost = plan_cost
        self.max_regression = max_regression
        self.max_total_regression = max_total_regression
        self.planner = planner or BeamSearchPlanner()
        self.planner_registry = planner_registry or PlannerRegistry()
        self._registered: list[str] = []

    @classmethod
    def from_environment(
        cls,
        environment,
        probe_queries: Sequence[Query] | None = None,
        **kwargs,
    ) -> "ShadowEvaluator":
        """An evaluator probing ``environment``'s training workload.

        Plans are costed with the minimal :math:`C_{out}` model over the
        environment's cardinality estimator — cheap, deterministic, and
        independent of both value networks.
        """
        from repro.costmodel.cout import CoutCostModel

        queries = (
            list(probe_queries)
            if probe_queries is not None
            else list(environment.train_queries)
        )
        return cls(queries, CoutCostModel(environment.estimator).cost, **kwargs)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        candidate: ValueNetwork,
        serving: ValueNetwork,
        candidate_version: int | None = None,
        serving_version: int | None = None,
    ) -> PromotionDecision:
        """Shadow-plan the probes with both models and decide on promotion.

        Args:
            candidate: The freshly trained network under evaluation.
            serving: The network currently taking traffic.
            candidate_version: Registry version recorded on the decision.
            serving_version: Registry version recorded on the decision.
        """
        candidate_name = register_versioned_network(
            self.planner_registry,
            candidate,
            candidate_version if candidate_version is not None else "candidate",
            planner=self.planner,
        )
        serving_name = register_versioned_network(
            self.planner_registry,
            serving,
            serving_version if serving_version is not None else "serving",
            planner=self.planner,
        )
        # Only the current pair stays registered: each versioned entry pins a
        # full weight copy, so a long-lived evaluator must not accumulate one
        # per round.
        for stale in self._registered:
            if stale not in (candidate_name, serving_name) and (
                stale in self.planner_registry
            ):
                self.planner_registry.unregister(stale)
        self._registered = [candidate_name, serving_name]
        # Imported here: repro.evaluation's package init pulls in the agent
        # stack, which itself imports the lifecycle package.
        from repro.evaluation.metrics import per_query_regressions

        serving_costs = self._probe_costs(serving_name)
        candidate_costs = self._probe_costs(candidate_name)
        regressions = per_query_regressions(serving_costs, candidate_costs)

        probes = [
            ProbeResult(
                query_name=name,
                serving_cost=serving_costs[name],
                candidate_cost=candidate_costs[name],
                regression=regressions[name],
            )
            for name in (query.name for query in self.probe_queries)
        ]
        max_regression = max(p.regression for p in probes)
        serving_total = sum(p.serving_cost for p in probes)
        candidate_total = sum(p.candidate_cost for p in probes)
        total_regression = candidate_total / max(serving_total, 1e-12)

        if max_regression > self.max_regression:
            worst = max(probes, key=lambda p: p.regression)
            promoted = False
            reason = (
                f"per-query regression bound violated: {worst.query_name} "
                f"regressed {worst.regression:.3f}x > {self.max_regression:.3f}x"
            )
        elif total_regression > self.max_total_regression:
            promoted = False
            reason = (
                f"workload regression bound violated: total probe cost "
                f"{total_regression:.3f}x > {self.max_total_regression:.3f}x"
            )
        else:
            promoted = True
            reason = "passed: all regression bounds hold"

        return PromotionDecision(
            candidate_version=candidate_version,
            serving_version=serving_version,
            promoted=promoted,
            reason=reason,
            probes=probes,
            max_regression=max_regression,
            regression_threshold=self.max_regression,
            total_regression=total_regression,
            total_threshold=self.max_total_regression,
        )

    def _probe_costs(self, planner_name: str) -> dict[str, float]:
        """Plan every probe with the named registry planner; cost best plans."""
        planner = self.planner_registry.get(planner_name)
        costs: dict[str, float] = {}
        for query in self.probe_queries:
            result = planner.plan(PlanRequest(query=query, k=1))
            if not result.plans:
                raise LifecycleError(
                    f"shadow planner {planner_name!r} returned no plan for "
                    f"{query.name!r}"
                )
            costs[query.name] = float(self.plan_cost(query, result.best_plan))
        return costs
