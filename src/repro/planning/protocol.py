"""The :class:`Planner` protocol: one method, one envelope, any backend.

A planner is anything with a ``name`` and a ``plan(request) -> PlanResult``
method.  The repository's optimizers implement it natively
(:class:`~repro.search.beam.BeamSearchPlanner` via the
:class:`~repro.planning.adapters.BeamPlanner` adapter, which binds the value
network; :class:`~repro.optimizer.expert.ExpertOptimizer`,
:class:`~repro.optimizer.dp.DynamicProgrammingOptimizer`,
:class:`~repro.optimizer.greedy.GreedyOptimizer`,
:class:`~repro.optimizer.quickpick.QuickPickOptimizer` and
:class:`~repro.baselines.bao.BaoAgent` directly).

Planners may additionally expose ``version_key()`` returning a hashable
identity of their current state; caches key results on it so that planners
whose behaviour changes over time (a value network being trained) invalidate
naturally.  :func:`planner_version` falls back to the planner's name for
stateless planners.
"""

from __future__ import annotations

from typing import Hashable, Protocol, runtime_checkable

from repro.planning.envelope import PlanRequest, PlanResult


@runtime_checkable
class Planner(Protocol):
    """Anything that can answer a :class:`PlanRequest` with a :class:`PlanResult`."""

    name: str

    def plan(self, request: PlanRequest) -> PlanResult:
        """Plan ``request.query`` and return the result envelope."""
        ...


def planner_version(planner: Planner) -> Hashable:
    """The cache identity of ``planner``'s current state.

    Uses the planner's ``version_key()`` when it defines one (e.g. the beam
    adapter forwards the value network's weight version); otherwise the
    planner's name — stateless planners produce the same plans forever, so
    their name is a sufficient cache key.
    """
    version_key = getattr(planner, "version_key", None)
    if callable(version_key):
        return version_key()
    return getattr(planner, "name", type(planner).__name__)
