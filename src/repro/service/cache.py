"""Cross-query plan cache for the planner service.

Unlike the execution-side :class:`~repro.execution.plan_cache.PlanCache`
(which memoises *latencies* of executed plans during training), this cache
memoises *planner results*: the full top-k output of a beam search, keyed by
the query's structural fingerprint and the version of the model that produced
it.  A repeated query under an unchanged model skips search entirely; any
weight update (which bumps :meth:`ValueNetwork.bump_version`) naturally
invalidates every entry produced by the previous weights.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.planning.envelope import PlanResult as PlannerResult

#: Cache key: (query structural fingerprint, planner/model version key, k).
CacheKey = tuple[Hashable, ...]


@dataclass
class CacheStats:
    """Counters describing cache effectiveness.

    Attributes:
        hits: Lookups answered from the cache.
        misses: Lookups that fell through to planning.
        inserts: Entries stored.
        evictions: Entries evicted by the LRU policy.
        size: Current number of live entries.
        capacity: Maximum number of entries.
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class ServicePlanCache:
    """A thread-safe LRU cache of :class:`PlannerResult` objects.

    Args:
        capacity: Maximum number of entries; the least recently used entry is
            evicted when full.  Zero disables caching (every lookup misses).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, PlannerResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._inserts = 0
        self._evictions = 0

    def lookup(self, key: CacheKey) -> PlannerResult | None:
        """Return the cached result for ``key``, refreshing its recency."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def store(self, key: CacheKey, result: PlannerResult) -> None:
        """Insert ``result`` under ``key``, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            self._inserts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def contains(self, key: CacheKey) -> bool:
        """Whether ``key`` is cached, without touching recency or counters."""
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """A snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                inserts=self._inserts,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
