"""Plan featurisation: Neo-style per-node feature vectors and tree flattening."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.schema import Schema
from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanNode, ScanOperator

#: Fixed operator slot order used in the one-hot part of a node feature.
OPERATOR_ORDER: tuple[str, ...] = (
    ScanOperator.SEQ_SCAN.value,
    ScanOperator.INDEX_SCAN.value,
    JoinOperator.HASH_JOIN.value,
    JoinOperator.MERGE_JOIN.value,
    JoinOperator.NESTED_LOOP.value,
)


@dataclass
class FlattenedPlan:
    """A plan flattened for tree convolution.

    Attributes:
        features: ``(num_nodes + 1, feature_dim)`` node features, row 0 being
            the sentinel zero node.
        left: Left-child indices per slot (0 = none).
        right: Right-child indices per slot (0 = none).
        num_nodes: Number of real nodes.
    """

    features: np.ndarray
    left: np.ndarray
    right: np.ndarray
    num_nodes: int


class PlanEncoder:
    """Encodes plan trees into flattened node tables.

    Each node's feature vector is ``[operator one-hot | table multi-hot]``
    where the multi-hot marks the base tables covered by the node's subtree.

    Args:
        schema: The database schema (defines the multi-hot slot order).
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self.table_order: list[str] = schema.table_names()
        self._table_slots = {table: i for i, table in enumerate(self.table_order)}
        self._operator_slots = {name: i for i, name in enumerate(OPERATOR_ORDER)}

    @property
    def node_dimension(self) -> int:
        """Feature dimensionality of one node."""
        return len(OPERATOR_ORDER) + len(self.table_order)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def node_features(self, plan: PlanNode, alias_to_table: dict[str, str]) -> np.ndarray:
        """Feature vector for a single node (without descending into children)."""
        features = np.zeros(self.node_dimension, dtype=np.float64)
        if isinstance(plan, ScanNode):
            operator = plan.operator.value
        elif isinstance(plan, JoinNode):
            operator = plan.operator.value
        else:  # pragma: no cover - only two node kinds
            raise TypeError(f"unknown plan node type {type(plan)!r}")
        features[self._operator_slots[operator]] = 1.0
        offset = len(OPERATOR_ORDER)
        for alias in plan.leaf_aliases:
            table = alias_to_table[alias]
            features[offset + self._table_slots[table]] = 1.0
        return features

    def flatten(self, plan: PlanNode, alias_to_table: dict[str, str]) -> FlattenedPlan:
        """Flatten a plan into the node-table form used by tree convolution."""
        nodes: list[PlanNode] = list(plan.iter_nodes())
        num_nodes = len(nodes)
        slot_of = {id(node): i + 1 for i, node in enumerate(nodes)}
        features = np.zeros((num_nodes + 1, self.node_dimension), dtype=np.float64)
        left = np.zeros(num_nodes + 1, dtype=np.int64)
        right = np.zeros(num_nodes + 1, dtype=np.int64)
        for node in nodes:
            slot = slot_of[id(node)]
            features[slot] = self.node_features(node, alias_to_table)
            if isinstance(node, JoinNode):
                left[slot] = slot_of[id(node.left)]
                right[slot] = slot_of[id(node.right)]
        return FlattenedPlan(features=features, left=left, right=right, num_nodes=num_nodes)
