"""Serve the planning stack over HTTP: the full gateway, end to end.

Builds a small JOB-like benchmark, stands up the serving stack — planner
service, persisted model registry, live-traffic shadower — and boots the
stdlib-only HTTP gateway.  In ``--smoke`` mode the script then exercises the
API against itself (plan by name, plan a structural query, metrics, models,
promote + automatic-shadow arming, rollback) and exits; without it the
gateway serves until interrupted.

Run with::

    python examples/serve_http.py --smoke            # self-exercise and exit
    python examples/serve_http.py --port 8080        # serve until Ctrl-C

With ``--persist-dir``, a restart resumes the last promoted model::

    python examples/serve_http.py --persist-dir /tmp/repro-models --smoke

With ``--learn``, the gateway closes the paper's on-policy loop against its
own live traffic: every served plan is recorded by an
:class:`~repro.experience.ExperienceSink`, costed and replayed off the hot
path, and an :class:`~repro.experience.OnlineTrainerLoop` autonomously runs
fine-tune → shadow-gate → promote rounds while requests keep flowing (smoke
mode then drives traffic until at least one round lands and prints
``GET /v1/experience``)::

    python examples/serve_http.py --smoke --learn

With ``--workers N`` (N > 1) the script boots the pre-fork
:class:`~repro.server.ShardedGateway` instead: N worker processes share one
listening port, a cross-process plan-cache tier and an ops-coherence bus.
Smoke mode then checks that every worker answers, that a plan computed by
one worker is a shared cache hit for the others, and that a promote (and a
rollback) posted to whichever worker the kernel picks is broadcast until
every worker serves the same version::

    python examples/serve_http.py --smoke --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.costmodel.cout import CoutCostModel
from repro.experience import OnlineTrainerLoop
from repro.lifecycle import (
    LifecycleError,
    ModelLifecycle,
    ModelRegistry,
    ShadowEvaluator,
)
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer, ShardedGateway, TrafficShadower
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark


def http(method: str, url: str, payload: dict | None = None) -> tuple[int, dict]:
    """One JSON exchange against the gateway."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def fetch_text(url: str) -> tuple[int, str]:
    """One GET returning the raw text body (for /metrics)."""
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read().decode("utf-8")


def smoke(base_url: str, query_names: list[str]) -> None:
    """Exercise every endpoint once and print what happened."""
    status, body = http("GET", f"{base_url}/healthz")
    print(f"GET /healthz -> {status}: serving v{body['serving_version']}")

    status, body = http("POST", f"{base_url}/v1/plan", {"query": query_names[0], "k": 2})
    print(
        f"POST /v1/plan ({query_names[0]!r}) -> {status}: "
        f"{len(body['plans'])} plans, best predicted "
        f"{body['predicted_latencies'][0]}"
    )

    status, body = http(
        "POST", f"{base_url}/v1/plan_many",
        {"requests": [{"query": name} for name in query_names]},
    )
    print(f"POST /v1/plan_many -> {status}: {len(body['results'])} results")

    status, body = http("GET", f"{base_url}/v1/metrics")
    default = body["planners"]["default"]
    print(
        f"GET /v1/metrics -> {status}: {default['requests']} requests, "
        f"{default['cache_hits']} cache hits, shadow observed "
        f"{body['shadow']['observed'] if body['shadow'] else 0}"
    )

    status, text = fetch_text(f"{base_url}/metrics")
    samples = [line for line in text.splitlines() if line and not line.startswith("#")]
    print(f"GET /metrics -> {status}: {len(samples)} samples in Prometheus text")

    status, body = http("GET", f"{base_url}/v1/traces")
    print(
        f"GET /v1/traces -> {status}: {body['recorded']} traces recorded, "
        f"{len(body['traces'])} in the ring"
    )
    if body["traces"]:
        trace_id = body["traces"][0]["trace_id"]
        status, single = http("GET", f"{base_url}/v1/traces/{trace_id}")
        print(
            f"GET /v1/traces/{trace_id} -> {status}: "
            f"{single['trace']['path']} took {single['trace']['duration_ms']}ms"
        )

    status, body = http("GET", f"{base_url}/v1/alerts")
    print(
        f"GET /v1/alerts -> {status}: {len(body['objectives'])} SLOs watched, "
        f"{len(body['firing'])} firing, {body['evaluations']} evaluations"
    )

    status, body = http("GET", f"{base_url}/v1/profile")
    profile = body["profile"]
    print(
        f"GET /v1/profile -> {status}: {profile.get('samples', 0)} stack "
        f"samples, {len(profile.get('stacks', {}))} distinct stacks, "
        f"flamegraph root value {body['flamegraph']['value']}"
    )

    status, body = http("GET", f"{base_url}/v1/models")
    print(
        f"GET /v1/models -> {status}: versions {body['versions']}, "
        f"serving v{body['serving_version']}"
    )
    candidates = [v for v in body["versions"] if v != body["serving_version"]]
    if candidates:
        target = candidates[-1]
        status, body = http(
            "POST", f"{base_url}/v1/models/promote", {"version": target}
        )
        print(
            f"POST /v1/models/promote v{target} -> {status}: serving "
            f"v{body['serving_version']} (shadow armed: "
            f"{body.get('shadow_armed', False)})"
        )
        # A little live traffic for the shadower to sample...
        for name in query_names:
            http("POST", f"{base_url}/v1/plan", {"query": name})
        time.sleep(0.2)
        status, body = http("POST", f"{base_url}/v1/models/rollback")
        print(
            f"POST /v1/models/rollback -> {status}: serving "
            f"v{body['serving_version']}"
        )


def learning_smoke(base_url: str, query_names: list[str]) -> None:
    """Drive traffic until the online loop lands a round, then report it."""
    deadline = time.monotonic() + 60.0
    body: dict = {}
    while time.monotonic() < deadline:
        for name in query_names:
            http("POST", f"{base_url}/v1/plan", {"query": name, "k": 2})
        status, body = http("GET", f"{base_url}/v1/experience")
        assert status == 200, f"/v1/experience returned {status}: {body}"
        if body["rounds"] >= 1:
            break
        time.sleep(0.1)
    assert body.get("rounds", 0) >= 1, f"no online round landed in time: {body}"
    sink, buffer = body["sink"], body["buffer"]
    print(
        f"GET /v1/experience -> 200: {body['rounds']} rounds, "
        f"{body['promotions']} promotions, {body['rejections']} rejections, "
        f"sink recorded {sink['recorded']} (dropped {sink['dropped']}, "
        f"stalls {sink['stalls']}), buffer {buffer['size']}/{buffer['capacity']} "
        f"({buffer['duplicates']} dups folded)"
    )
    assert sink["stalls"] == 0, "experience sink stalled a foreground request"
    status, metrics = http("GET", f"{base_url}/v1/metrics")
    assert status == 200 and metrics["experience"] is not None
    print("GET /v1/metrics -> 200: experience block present")


def http_with_headers(url: str) -> tuple[int, dict, dict]:
    """One GET, also returning the response headers (for X-Repro-Worker)."""
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            json.loads(response.read().decode("utf-8")),
            dict(response.headers),
        )


def await_workers_serving(
    gateway: ShardedGateway, version: int, timeout: float = 30.0
) -> set[int]:
    """Poll ``/healthz`` until every worker reports ``serving_version``."""
    expected = set(range(gateway.num_workers))
    serving: set[int] = set()
    deadline = time.monotonic() + timeout
    while serving != expected and time.monotonic() < deadline:
        _, body, headers = http_with_headers(f"{gateway.base_url}/healthz")
        worker = headers.get("X-Repro-Worker")
        if worker is not None and body["serving_version"] == version:
            serving.add(int(worker))
    return serving


def sharded_smoke(gateway: ShardedGateway, query_names: list[str]) -> None:
    """Check workers answer, the cache tier carries plans, and ops cohere."""
    base_url = gateway.base_url
    expected = set(range(gateway.num_workers))
    seen: set[int] = set()
    deadline = time.monotonic() + 30.0
    while seen != expected and time.monotonic() < deadline:
        status, body, headers = http_with_headers(f"{base_url}/healthz")
        assert status == 200, f"/healthz returned {status}"
        worker = headers.get("X-Repro-Worker")
        if worker is not None:
            seen.add(int(worker))
            assert int(worker) == body["worker_id"]
    assert seen == expected, f"only workers {sorted(seen)} of {sorted(expected)} answered"
    print(f"GET /healthz -> 200 from all {len(seen)} workers: {sorted(seen)}")

    status, body = http("POST", f"{base_url}/v1/plan", {"query": query_names[0], "k": 2})
    assert status == 200, f"/v1/plan returned {status}"
    print(f"POST /v1/plan ({query_names[0]!r}) -> {status}: {len(body['plans'])} plans")

    status, body = http(
        "POST", f"{base_url}/v1/plan_many",
        {"requests": [{"query": name} for name in query_names]},
    )
    assert status == 200, f"/v1/plan_many returned {status}"
    print(f"POST /v1/plan_many -> {status}: {len(body['results'])} results")

    # Re-plan the same queries until every worker has served at least one;
    # repeats that land on a different worker should come from the shared tier.
    served: set[int] = set()
    deadline = time.monotonic() + 30.0
    while served != expected and time.monotonic() < deadline:
        for name in query_names:
            http("POST", f"{base_url}/v1/plan", {"query": name, "k": 2})
        status, body, headers = http_with_headers(f"{base_url}/v1/metrics")
        assert status == 200, f"/v1/metrics returned {status}"
        served.add(int(headers["X-Repro-Worker"]))
    assert served == expected, f"metrics answered by {sorted(served)} only"
    print(f"GET /v1/metrics -> 200 from all {len(served)} workers")

    status, body = http("GET", f"{base_url}/v1/models")
    assert status == 200, f"/v1/models returned {status}"
    print(f"GET /v1/models -> {status}: serving v{body['serving_version']}")

    # Ops coherence: a promote lands on ONE worker (the kernel's pick) and
    # must reach all of them through the broadcast bus; same for rollback.
    serving = body["serving_version"]
    candidates = [v for v in body["versions"] if v != serving]
    if candidates:
        target = candidates[-1]
        status, body = http(
            "POST", f"{base_url}/v1/models/promote", {"version": target}
        )
        assert status == 200, f"promote returned {status}: {body}"
        agreed = await_workers_serving(gateway, target)
        assert agreed == set(range(gateway.num_workers)), (
            f"promote v{target} reached workers {sorted(agreed)} only"
        )
        print(f"POST /v1/models/promote v{target} -> 200: all workers serving it")
        status, body = http("POST", f"{base_url}/v1/models/rollback")
        assert status == 200, f"rollback returned {status}: {body}"
        agreed = await_workers_serving(gateway, serving)
        assert agreed == set(range(gateway.num_workers)), (
            f"rollback to v{serving} reached workers {sorted(agreed)} only"
        )
        print(f"POST /v1/models/rollback -> 200: all workers back on v{serving}")

    cache = gateway.shared_cache_stats() or {}
    print(
        f"shared cache tier: {cache.get('inserts', 0)} inserts, "
        f"{cache.get('hits', 0)} hits, {cache.get('size', 0)} entries"
    )
    assert cache.get("inserts", 0) > 0, "no plans reached the shared cache tier"
    stats = gateway.stats()
    assert stats["alive_workers"] == gateway.num_workers
    print(f"supervisor: {stats['alive_workers']} workers alive, {stats['respawns_used']} respawns")


def dump_traces(base_url: str, path: Path) -> None:
    """Write the gateway's ``/v1/traces`` payload to ``path`` (CI artifact)."""
    status, body = http("GET", f"{base_url}/v1/traces")
    assert status == 200, f"/v1/traces returned {status}"
    path.write_text(json.dumps(body, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(body['traces'])} sample traces to {path}")


def dump_profile(base_url: str, path: Path) -> None:
    """Write the gateway's ``/v1/profile`` payload to ``path`` (CI artifact,
    ``flamegraph`` key loads directly into d3-flame-graph / speedscope)."""
    status, body = http("GET", f"{base_url}/v1/profile")
    assert status == 200, f"/v1/profile returned {status}"
    path.write_text(json.dumps(body, indent=2) + "\n", encoding="utf-8")
    samples = body.get("profile", {}).get("samples", 0)
    print(f"wrote flamegraph profile ({samples} samples) to {path}")


def run_sharded(args, benchmark, network, planner, queries) -> None:
    """Boot the pre-fork sharded gateway and (optionally) smoke it."""

    # Built once, pre-fork: every worker registers snapshots of the SAME two
    # networks, so version numbers (1 = baseline, 2 = candidate) and cache
    # version tags agree across all registries and broadcast ops apply
    # identically everywhere.
    candidate = network.clone()

    def worker_factory(spec):
        # Runs in the forked child: the network/benchmark/planner objects are
        # inherited from the parent; the service (thread pool) and registry
        # are per worker.
        service = PlannerService(network, planner=planner, max_workers=2)
        registry = ModelRegistry()
        baseline = registry.register(network, source="baseline")
        registry.promote(baseline.version)
        registry.register(candidate, source="candidate")
        return PlanningServer(
            service,
            registry=registry,
            queries=queries,
            featurizer=benchmark.featurizer,
            host=spec.host,
            port=spec.port,
        )

    gateway = ShardedGateway(
        worker_factory,
        num_workers=args.workers,
        host=args.host,
        port=args.port,
    ).start()
    stats = gateway.stats()
    mode = "SO_REUSEPORT" if stats["reuse_port"] else "inherited listener"
    print(
        f"sharded gateway listening on {gateway.base_url} "
        f"({stats['num_workers']} workers, {mode}, pids {gateway.worker_pids()})"
    )
    print(f"  try: curl -s {gateway.base_url}/healthz")

    try:
        if args.smoke:
            sharded_smoke(gateway, [query.name for query in queries[:5]])
            # Workers push registry snapshots on an interval; give every
            # worker a beat to report before sampling the fleet merge.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                reporting = gateway.telemetry_server.worker_ids()
                if len(reporting) >= stats["num_workers"]:
                    break
                time.sleep(0.1)
            status, text = fetch_text(f"{gateway.metrics_url}")
            samples = [
                line for line in text.splitlines() if line and not line.startswith("#")
            ]
            print(
                f"GET {gateway.metrics_url} -> {status}: fleet-merged "
                f"{len(samples)} samples"
            )
            if args.traces_out is not None:
                dump_traces(gateway.base_url, args.traces_out)
            if args.profile_out is not None:
                # The supervisor's fleet endpoint merges every worker's
                # pushed profile (workers report on the telemetry interval).
                fleet_base = gateway.metrics_url.rsplit("/metrics", 1)[0]
                dump_profile(fleet_base, args.profile_out)
            print("smoke: every endpoint answered from every worker")
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        gateway.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 boots the pre-fork sharded gateway with a "
        "shared plan-cache tier (--persist-dir then applies per worker and is "
        "ignored)",
    )
    parser.add_argument(
        "--persist-dir", type=Path, default=None,
        help="registry directory; restarts resume the last promoted model "
        "(single-process mode only)",
    )
    parser.add_argument(
        "--learn", action="store_true",
        help="close the on-policy loop: record live traffic into an "
        "experience sink and autonomously fine-tune/gate/promote from it "
        "(single-process mode only)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="exercise every endpoint against the booted gateway, then exit",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON logs (gateway, supervisor, workers and "
        "scorer processes all inherit the setting)",
    )
    parser.add_argument(
        "--traces-out", type=Path, default=None,
        help="with --smoke: write the gateway's /v1/traces payload (sample "
        "request traces) to this JSON file before exiting",
    )
    parser.add_argument(
        "--profile-out", type=Path, default=None,
        help="with --smoke: write the gateway's /v1/profile payload "
        "(flamegraph-ready merged stack samples) to this JSON file before "
        "exiting",
    )
    args = parser.parse_args()

    if args.log_json:
        # The env flag is what forked shard workers and scorer processes
        # check (maybe_configure_from_env); set it before any fork.
        os.environ["REPRO_LOG_JSON"] = "1"
        from repro.telemetry import configure_json_logging

        configure_json_logging()

    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.learn and args.workers > 1:
        parser.error("--learn runs the online loop in-process (use --workers 1)")

    # 1. The workload and the serving stack.  Built once, before any fork,
    # so sharded workers inherit the SAME network object and their plan-cache
    # keys (which embed the model version) agree across processes.
    benchmark = make_job_benchmark(
        fact_rows=400, num_queries=12, num_templates=4, test_size=3,
        seed=0, size_range=(3, 5),
    )
    queries = benchmark.all_queries()
    network = ValueNetwork(
        benchmark.featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=0,
        ),
    )
    planner = BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)

    if args.workers > 1:
        run_sharded(args, benchmark, network, planner, queries)
        return

    service = PlannerService(network, planner=planner, max_workers=4)

    # 2. The model registry: resume a persisted serving chain when possible.
    registry = None
    if args.persist_dir is not None:
        try:
            registry = ModelRegistry.load_persisted(args.persist_dir)
            print(
                f"resumed registry from {args.persist_dir}: serving "
                f"v{registry.serving_version}, versions {registry.versions()}"
            )
        except LifecycleError:
            pass
    if registry is None:
        registry = ModelRegistry(persist_dir=args.persist_dir)
        baseline = registry.register(network, source="baseline")
        registry.promote(baseline.version)
        # A second registered (not promoted) version gives the promote
        # endpoint something to work with.
        registry.register(network.clone(), source="candidate")

    # 3. Live-traffic shadow scoring with automatic rollback.
    plan_cost = CoutCostModel(benchmark.estimator).cost
    shadower = TrafficShadower(
        service,
        registry,
        plan_cost,
        sample_fraction=0.25,
        max_regression=2.0,
        max_total_regression=1.25,
        planner=planner,
        featurizer=benchmark.featurizer,
    )

    # 4. With --learn: the full online loop.  Served plans flow through the
    # sink into the replay buffer; the trainer loop fine-tunes the serving
    # network from them, gates candidates on the probe workload, promotes
    # winners, and every promotion arms the shadower for live rollback.
    lifecycle = None
    experience = None
    if args.learn:
        gate = ShadowEvaluator(
            benchmark.train_queries,
            plan_cost,
            max_regression=5.0,
            max_total_regression=1.5,
            planner=planner,
        )
        lifecycle = ModelLifecycle(
            service, registry, gate, featurizer=benchmark.featurizer
        )
        experience = OnlineTrainerLoop(
            lifecycle,
            plan_cost,
            min_new_tuples=12,
            min_round_interval_seconds=0.2,
            sample_size=64,
            max_epochs=4,
        ).start()

    gateway = PlanningServer(
        service,
        registry=registry,
        lifecycle=lifecycle,
        shadower=shadower,
        experience=experience,
        planner_registry=None,
        queries=queries,
        featurizer=benchmark.featurizer,
        host=args.host,
        port=args.port,
    ).start()
    print(f"gateway listening on {gateway.base_url}")
    print(f"  try: curl -s {gateway.base_url}/healthz")
    if args.learn:
        print("  online learning loop running (watch /v1/experience)")

    try:
        if args.smoke:
            smoke(gateway.base_url, [query.name for query in queries[:5]])
            if args.learn:
                learning_smoke(
                    gateway.base_url, [query.name for query in queries]
                )
            if args.traces_out is not None:
                dump_traces(gateway.base_url, args.traces_out)
            if args.profile_out is not None:
                dump_profile(gateway.base_url, args.profile_out)
            print("smoke: every endpoint answered")
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if experience is not None:
            experience.close()
        gateway.close()
        shadower.close()
        service.close()


if __name__ == "__main__":
    main()
