"""Tests for the pluggable scoring backends (`repro.scoring`).

Covers the wire format, the stateless ``ValueNetwork.from_state_dict`` /
``predict_from_state`` contract, snapshot persistence to disk, the backend
matrix (inproc / threaded / process / process+shm) behind one protocol,
process-backend failure modes (crash mid-batch surfaces a typed error,
never a hang), the shared-memory ring fast path (wraparound, oversize
fallback, lease reclaim after a SIGKILL), the scorer-pool autoscaler, and
the planner service's in-process fallback after repeated backend failures.

The matrix half honours ``REPRO_SCORING_BACKENDS`` (comma-separated subset
of ``inproc,threaded,process,process+shm``) so CI can shard one backend
per job.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.featurization.featurizer import SignatureFeaturizer, canonical_signature
from repro.lifecycle import ModelRegistry, ModelSnapshot
from repro.model.value_network import (
    StateDictMismatchError,
    ValueNetwork,
    ValueNetworkConfig,
)
from repro.planning.envelope import PlanRequest
from repro.scoring import (
    AutoscalerConfig,
    InProcessBackend,
    PoolAutoscaler,
    ProcessPoolBackend,
    ScoringBackend,
    ScoringBackendError,
    ScoringBridgeStats,
    ShmRingBuffer,
    ThreadedBatchingBackend,
    make_scoring_backend,
)
from repro.scoring.process import _CRASH_TOKEN, _STALL_TOKEN
from repro.scoring.shm import (
    SLOT_FREE,
    SLOT_PROCESSING,
    SLOT_READY,
    SLOT_WRITING,
)
from repro.scoring.wire import pack_examples, unpack_examples
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark

_ALL_BACKENDS = ("inproc", "threaded", "process", "process+shm")
_requested = [
    name.strip()
    for name in os.environ.get("REPRO_SCORING_BACKENDS", "").split(",")
    if name.strip()
]
BACKENDS = tuple(name for name in _ALL_BACKENDS if name in _requested) or _ALL_BACKENDS


def small_config(seed: int = 0) -> ValueNetworkConfig:
    return ValueNetworkConfig(
        query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8,
        seed=seed,
    )


def small_network(featurizer, seed: int = 0) -> ValueNetwork:
    return ValueNetwork(featurizer, small_config(seed))


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=300, num_queries=8, num_templates=4, test_size=2,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def queries(bench):
    return list(bench.train_queries)


@pytest.fixture(scope="module")
def candidate_plans(bench, queries):
    """A handful of distinct plans per query to score."""
    network = small_network(bench.featurizer, seed=7)
    planner = BeamSearchPlanner(beam_size=4, top_k=4, enumerate_scan_operators=False)
    return {
        query.name: planner.search(query, network).plans for query in queries[:3]
    }


def make_backend(name: str, bench, provider=None, **kwargs) -> ScoringBackend:
    if name in ("process", "process+shm"):
        kwargs.setdefault("submit_timeout_seconds", 60.0)
        kwargs.setdefault("num_workers", 2)
    if name == "process+shm":
        # Keep the matrix deterministic: no background resizing mid-test.
        kwargs.setdefault("autoscaler", None)
    return make_scoring_backend(
        name, provider, featurizer=bench.featurizer, **kwargs
    )


# ---------------------------------------------------------------------- #
# Wire format
# ---------------------------------------------------------------------- #
class TestWireFormat:
    def test_round_trip_preserves_examples_and_predictions(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        examples = [bench.featurizer.featurize(query, plan) for plan in plans]
        restored = unpack_examples(pack_examples(examples))
        assert len(restored) == len(examples)
        for original, copy in zip(examples, restored):
            np.testing.assert_array_equal(original.query_encoding, copy.query_encoding)
            np.testing.assert_array_equal(original.plan.features, copy.plan.features)
            np.testing.assert_array_equal(original.plan.left, copy.plan.left)
            np.testing.assert_array_equal(original.plan.right, copy.plan.right)
            assert original.plan.num_nodes == copy.plan.num_nodes
        np.testing.assert_allclose(
            network.predict_examples(restored), network.predict_examples(examples)
        )

    def test_zero_examples_rejected(self):
        with pytest.raises(ValueError, match="zero examples"):
            pack_examples([])

    def test_garbage_payload_rejected(self):
        with pytest.raises(Exception):
            unpack_examples(b"definitely not an npz archive")


# ---------------------------------------------------------------------- #
# Stateless restore: from_state_dict / predict_from_state
# ---------------------------------------------------------------------- #
class TestStatelessRestore:
    def test_predict_from_state_matches_live_network(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer, seed=3)
        query = queries[0]
        plans = candidate_plans[query.name]
        examples = [bench.featurizer.featurize(query, plan) for plan in plans]
        np.testing.assert_allclose(
            ValueNetwork.predict_from_state(network.state_dict(), examples),
            network.predict_examples(examples),
        )

    def test_from_state_dict_without_schema(self, bench):
        network = small_network(bench.featurizer, seed=1)
        restored = ValueNetwork.from_state_dict(network.state_dict())
        assert isinstance(restored.featurizer, SignatureFeaturizer)
        assert restored.featurizer.signature() == canonical_signature(
            bench.featurizer.signature()
        )
        assert restored.config == network.config

    def test_signature_featurizer_cannot_featurize(self, bench, queries):
        network = small_network(bench.featurizer)
        restored = ValueNetwork.from_state_dict(network.state_dict())
        with pytest.raises(TypeError, match="cannot featurize"):
            restored.featurizer.featurize(queries[0], None)

    def test_missing_signature_rejected(self, bench):
        network = small_network(bench.featurizer)
        state = network.state_dict()
        del state["featurizer_signature"]
        with pytest.raises(StateDictMismatchError, match="no featurizer_signature"):
            ValueNetwork.from_state_dict(state)

    def test_non_state_dict_rejected(self):
        with pytest.raises(StateDictMismatchError, match="missing 'weights'"):
            ValueNetwork.from_state_dict({"weights?": "nope"})


# ---------------------------------------------------------------------- #
# Snapshot persistence (np.savez on the state_dict format)
# ---------------------------------------------------------------------- #
class TestSnapshotPersistence:
    def test_save_load_round_trip(self, bench, queries, candidate_plans, tmp_path):
        network = small_network(bench.featurizer, seed=4)
        snapshot = ModelSnapshot.capture(
            network, 7, source="unit", parent_version=3, tag="t"
        )
        path = snapshot.save(tmp_path / "model-v7.npz")
        loaded = ModelSnapshot.load(path)
        assert loaded.version == 7
        assert loaded.source == "unit"
        assert loaded.parent_version == 3
        assert loaded.tag == "t"
        assert loaded.created_at == pytest.approx(snapshot.created_at)
        assert loaded.featurizer_signature == canonical_signature(
            bench.featurizer.signature()
        )
        query = queries[0]
        plans = candidate_plans[query.name]
        restored = loaded.restore(bench.featurizer)
        np.testing.assert_allclose(
            restored.predict(query, plans), network.predict(query, plans)
        )
        # And the stateless route works off the loaded state too.
        examples = [bench.featurizer.featurize(query, plan) for plan in plans]
        np.testing.assert_allclose(
            ValueNetwork.from_state_dict(loaded.state).predict_examples(examples),
            network.predict(query, plans),
        )

    def test_loaded_weights_are_frozen(self, bench, tmp_path):
        network = small_network(bench.featurizer)
        path = ModelSnapshot.capture(network, 1).save(tmp_path / "m.npz")
        loaded = ModelSnapshot.load(path)
        weights = loaded.state["weights"]
        name = next(iter(weights))
        with pytest.raises(ValueError):
            weights[name][0] = 1.0

    def test_registry_persists_on_promote(self, bench, tmp_path):
        registry = ModelRegistry(persist_dir=tmp_path / "models")
        snapshot = registry.register(small_network(bench.featurizer), source="a")
        assert not registry.snapshot_path(snapshot.version).exists()
        registry.promote(snapshot.version)
        path = registry.snapshot_path(snapshot.version)
        assert path.exists()
        assert ModelSnapshot.load(path).version == snapshot.version

    def test_registry_subscribers_follow_promotions_and_rollbacks(self, bench):
        registry = ModelRegistry()
        seen: list[int] = []
        registry.subscribe(lambda snapshot: seen.append(snapshot.version))
        first = registry.register(small_network(bench.featurizer, seed=0))
        second = registry.register(small_network(bench.featurizer, seed=1))
        registry.promote(first.version)
        registry.promote(second.version)
        registry.rollback()
        assert seen == [first.version, second.version, first.version]

    def test_unsubscribed_listeners_stop_receiving(self, bench):
        registry = ModelRegistry()
        seen: list[int] = []

        def listener(snapshot):
            seen.append(snapshot.version)

        registry.subscribe(listener)
        first = registry.register(small_network(bench.featurizer, seed=0))
        registry.promote(first.version)
        registry.unsubscribe(listener)
        second = registry.register(small_network(bench.featurizer, seed=1))
        registry.promote(second.version)
        assert seen == [first.version]

    def test_raising_listener_never_unwinds_a_promotion(self, bench):
        registry = ModelRegistry()

        def bad_listener(snapshot):
            raise RuntimeError("listener bug")

        registry.subscribe(bad_listener)
        snapshot = registry.register(small_network(bench.featurizer))
        with pytest.warns(RuntimeWarning, match="listener"):
            registry.promote(snapshot.version)
        assert registry.serving_version == snapshot.version

    @pytest.mark.skipif(
        "process" not in BACKENDS, reason="process backend filtered out"
    )
    def test_closed_process_backend_detaches_from_registry(self, bench):
        registry = ModelRegistry()
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0
        )
        backend.follow(registry)
        spool = backend._spool_dir
        first = registry.register(small_network(bench.featurizer, seed=0))
        registry.promote(first.version)
        backend.close()
        assert not os.path.exists(spool)
        # Later promotions must not resurrect the closed backend's spool.
        second = registry.register(small_network(bench.featurizer, seed=1))
        registry.promote(second.version)
        assert not os.path.exists(spool)


# ---------------------------------------------------------------------- #
# The backend matrix: one protocol, three implementations
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend_name", BACKENDS)
class TestBackendMatrix:
    def test_submit_matches_direct_predict(
        self, backend_name, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer, seed=0)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = make_backend(backend_name, bench)
        try:
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
            stats = backend.stats()
            assert stats.requests == 1
            assert stats.examples == len(plans)
        finally:
            backend.close()

    def test_version_pins_are_respected(
        self, backend_name, bench, queries, candidate_plans
    ):
        net_a = small_network(bench.featurizer, seed=0)
        net_b = small_network(bench.featurizer, seed=9)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = make_backend(backend_name, bench)
        try:
            scored_a = backend.submit(query, plans, version=net_a)
            scored_b = backend.submit(query, plans, version=net_b)
            np.testing.assert_allclose(scored_a, net_a.predict(query, plans))
            np.testing.assert_allclose(scored_b, net_b.predict(query, plans))
            assert not np.allclose(scored_a, scored_b)
        finally:
            backend.close()

    def test_search_through_backend_is_invisible(
        self, backend_name, bench, queries
    ):
        """The refactor must not change what beam search finds."""
        network = small_network(bench.featurizer, seed=2)
        planner = small_planner()
        backend = make_backend(backend_name, bench)
        try:
            for query in queries[:3]:
                direct = planner.search(query, network)
                routed = planner.search(
                    query,
                    network,
                    score_fn=lambda q, p: backend.submit(q, p, version=network),
                )
                assert [p.fingerprint() for p in routed.plans] == [
                    p.fingerprint() for p in direct.plans
                ]
                np.testing.assert_allclose(
                    routed.predicted_latencies, direct.predicted_latencies
                )
        finally:
            backend.close()

    def test_follow_registry_promotions_propagate_by_version(
        self, backend_name, bench, queries, candidate_plans
    ):
        net_a = small_network(bench.featurizer, seed=0)
        net_b = small_network(bench.featurizer, seed=9)
        query = queries[0]
        plans = candidate_plans[query.name]
        registry = ModelRegistry()
        backend = make_backend(backend_name, bench)
        try:
            backend.follow(registry)
            first = registry.register(net_a)
            registry.promote(first.version)
            np.testing.assert_allclose(
                backend.submit(query, plans), net_a.predict(query, plans)
            )
            second = registry.register(net_b)
            registry.promote(second.version)
            np.testing.assert_allclose(
                backend.submit(query, plans), net_b.predict(query, plans)
            )
            # Explicit registry-version pins resolve too (old version stays
            # servable for in-flight requests pinned before the promotion).
            np.testing.assert_allclose(
                backend.submit(query, plans, version=first.version),
                net_a.predict(query, plans),
            )
        finally:
            backend.close()

    def test_empty_plans_scored_as_empty(self, backend_name, bench, queries):
        backend = make_backend(backend_name, bench)
        try:
            result = backend.submit(queries[0], [])
            assert result.shape == (0,)
        finally:
            backend.close()

    def test_closed_backend_rejects_submits(
        self, backend_name, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        backend = make_backend(backend_name, bench)
        backend.close()
        with pytest.raises(RuntimeError):
            backend.submit(
                queries[0], candidate_plans[queries[0].name], version=network
            )

    def test_max_batch_records_true_chunk_sizes(
        self, backend_name, bench, queries, candidate_plans
    ):
        """Regression: ``max_batch_examples`` is the largest chunk actually
        run, and chunking accounts for every example exactly once."""
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = list(candidate_plans[query.name])
        assert len(plans) >= 3
        backend = make_backend(backend_name, bench, max_batch_size=2)
        try:
            predictions = backend.submit(query, plans, version=network)
            np.testing.assert_allclose(predictions, network.predict(query, plans))
            stats = backend.stats()
            assert stats.examples == len(plans)
            expected_batches = (len(plans) + 1) // 2
            assert stats.forward_batches == expected_batches
            assert stats.max_batch_examples == 2
        finally:
            backend.close()

    def test_service_parity_with_serial_search(self, backend_name, bench, queries):
        network = small_network(bench.featurizer, seed=5)
        planner = small_planner()
        serial = [planner.search(query, network) for query in queries]
        with PlannerService(
            network,
            planner=small_planner(),
            max_workers=2,
            scoring_backend=backend_name,
        ) as service:
            responses = service.plan_many(queries)
            for direct, response in zip(serial, responses):
                assert not response.cache_hit
                assert response.best_plan.fingerprint() == (
                    direct.best_plan.fingerprint()
                )
            # Coalesced traffic under the same backend stays correct.
            warm = service.plan_many(queries)
            assert all(response.cache_hit for response in warm)


# ---------------------------------------------------------------------- #
# Stats snapshots cannot drift (dataclasses.replace copies every field)
# ---------------------------------------------------------------------- #
class TestStatsSnapshotDrift:
    def test_every_field_survives_the_snapshot(self, bench):
        backend = ThreadedBatchingBackend(
            lambda: None, featurizer=bench.featurizer
        )
        try:
            internal = backend._core._stats
            for index, field in enumerate(dataclasses.fields(ScoringBridgeStats)):
                setattr(internal, field.name, index + 1)
            snapshot = backend.stats()
            for index, field in enumerate(dataclasses.fields(ScoringBridgeStats)):
                assert getattr(snapshot, field.name) == index + 1, (
                    f"stats() dropped field {field.name!r}; snapshots must use "
                    f"dataclasses.replace, not hand-copied fields"
                )
            # The snapshot is a copy: mutating it never touches the counters.
            snapshot.requests = 10_000
            assert backend._core._stats.requests != 10_000
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Process-backend failure modes
# ---------------------------------------------------------------------- #
@pytest.mark.skipif("process" not in BACKENDS, reason="process backend filtered out")
class TestProcessBackendFailures:
    def test_crash_mid_batch_surfaces_typed_error_not_hang(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=2, submit_timeout_seconds=60.0
        )
        backend._allow_crash_token = True
        try:
            # Warm path first: both workers serve.
            backend.submit(query, plans, version=network)
            with pytest.raises(ScoringBackendError, match="died mid-batch"):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            assert backend.stats().worker_crashes == 1
            # The surviving worker keeps serving subsequent requests.
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
            assert backend.alive_workers() == 1
        finally:
            backend.close()

    def test_all_workers_dead_rejects_immediately(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=2, submit_timeout_seconds=60.0
        )
        backend._allow_crash_token = True
        try:
            for _ in range(2):
                with pytest.raises(ScoringBackendError):
                    backend.submit(query, plans, version=_CRASH_TOKEN)
            assert backend.alive_workers() == 0
            with pytest.raises(ScoringBackendError, match="all scorer processes"):
                backend.submit(query, plans, version=network)
        finally:
            backend.close()

    def test_unresolvable_version_is_typed(self, bench, queries, candidate_plans):
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0
        )
        try:
            with pytest.raises(ScoringBackendError, match="not .*following"):
                backend.submit(queries[0], candidate_plans[queries[0].name], version=42)
            # Negative pins (including an unarmed crash token) never reach
            # the scorer processes.
            with pytest.raises(ScoringBackendError, match="cannot resolve"):
                backend.submit(
                    queries[0], candidate_plans[queries[0].name], version=_CRASH_TOKEN
                )
            assert backend.alive_workers() == 1
        finally:
            backend.close()


@pytest.mark.skipif("process" not in BACKENDS, reason="process backend filtered out")
class TestProcessBackendRespawn:
    """With a ``max_respawns`` budget, crashed scorers are replaced."""

    @staticmethod
    def _wait_alive(backend, count: int, timeout: float = 15.0) -> int:
        deadline = time.monotonic() + timeout
        while backend.alive_workers() != count and time.monotonic() < deadline:
            time.sleep(0.05)
        return backend.alive_workers()

    def test_crashed_worker_respawns_and_serves(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0,
            max_respawns=2,
        )
        backend._allow_crash_token = True
        try:
            # The crash still fails its own batch with the typed error...
            with pytest.raises(ScoringBackendError, match="died mid-batch"):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            # ...but the slot is refilled instead of the pool shrinking to 0.
            assert self._wait_alive(backend, 1) == 1
            stats = backend.stats()
            assert stats.worker_crashes == 1
            assert stats.workers_respawned == 1
            # The respawned worker restores the snapshot from the spool and
            # serves correct predictions.
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
        finally:
            backend.close()

    def test_respawn_budget_is_bounded(self, bench, queries, candidate_plans):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0,
            max_respawns=1,
        )
        backend._allow_crash_token = True
        try:
            with pytest.raises(ScoringBackendError, match="died mid-batch"):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            assert self._wait_alive(backend, 1) == 1
            # Second crash: the pool-wide budget is spent, no replacement.
            with pytest.raises(ScoringBackendError):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            assert self._wait_alive(backend, 0) == 0
            stats = backend.stats()
            assert stats.worker_crashes == 2
            assert stats.workers_respawned == 1
            with pytest.raises(ScoringBackendError, match="all scorer processes"):
                backend.submit(query, plans, version=network)
        finally:
            backend.close()

    def test_default_keeps_historical_no_respawn_behaviour(self):
        backend = ProcessPoolBackend(num_workers=1)
        try:
            assert backend.max_respawns == 0
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Shared-memory ring: lease state machine and wraparound
# ---------------------------------------------------------------------- #
class TestShmRingBuffer:
    def test_lease_cycle_and_wraparound(self):
        ring = ShmRingBuffer(create=True, num_slots=3, slot_bytes=64)
        try:
            for round_trip in range(10):  # > num_slots: the ring wraps
                slot = ring.acquire()
                assert slot is not None
                payload = bytes([round_trip % 251]) * 8
                ring.payload_view(slot)[: len(payload)] = payload
                ring.commit(slot, len(payload))
                assert ring.begin(slot) == len(payload)
                assert bytes(ring.payload_view(slot)[: len(payload)]) == payload
                ring.release(slot)
            assert ring.occupancy() == 0.0
        finally:
            ring.unlink()

    def test_acquire_returns_none_when_full(self):
        ring = ShmRingBuffer(create=True, num_slots=2, slot_bytes=64)
        try:
            slots = [ring.acquire() for _ in range(2)]
            assert sorted(slots) == [0, 1]
            assert ring.acquire() is None
            ring.release(slots[0])
            assert ring.acquire() == slots[0]
        finally:
            ring.unlink()

    def test_reclaim_frees_only_requested_states(self):
        ring = ShmRingBuffer(create=True, num_slots=4, slot_bytes=64)
        try:
            writing = ring.acquire()
            ready = ring.acquire()
            ring.commit(ready, 1)
            processing = ring.acquire()
            ring.commit(processing, 1)
            ring.begin(processing)
            assert ring.state(writing) == SLOT_WRITING
            assert ring.state(ready) == SLOT_READY
            assert ring.state(processing) == SLOT_PROCESSING
            # The dead-scorer policy: READY/PROCESSING come back, WRITING
            # stays with its live submitter.
            assert ring.reclaim((SLOT_READY, SLOT_PROCESSING)) == 2
            assert ring.state(writing) == SLOT_WRITING
            assert ring.state(ready) == SLOT_FREE
            assert ring.state(processing) == SLOT_FREE
        finally:
            ring.unlink()

    def test_attached_consumer_sees_committed_payloads(self):
        ring = ShmRingBuffer(create=True, num_slots=2, slot_bytes=64)
        try:
            slot = ring.acquire()
            ring.payload_view(slot)[:3] = b"abc"
            ring.commit(slot, 3)
            other = ShmRingBuffer(ring.name)
            try:
                assert other.begin(slot) == 3
                assert bytes(other.payload_view(slot)[:3]) == b"abc"
                other.release(slot)
            finally:
                other.close()
            # Lease transitions are visible across the attachment too.
            assert ring.state(slot) == SLOT_FREE
        finally:
            ring.unlink()

    def test_begin_reports_a_reclaimed_slot(self):
        ring = ShmRingBuffer(create=True, num_slots=1, slot_bytes=64)
        try:
            slot = ring.acquire()
            assert ring.begin(slot) is None  # WRITING, not READY
        finally:
            ring.unlink()

    def test_oversize_commit_rejected(self):
        ring = ShmRingBuffer(create=True, num_slots=1, slot_bytes=32)
        try:
            slot = ring.acquire()
            with pytest.raises(ValueError):
                ring.commit(slot, 33)
        finally:
            ring.unlink()


# ---------------------------------------------------------------------- #
# The shm fast path through the process pool
# ---------------------------------------------------------------------- #
@pytest.mark.skipif(
    "process+shm" not in BACKENDS, reason="process+shm backend filtered out"
)
class TestShmBackendPath:
    @staticmethod
    def _backend(bench, **kwargs) -> ProcessPoolBackend:
        kwargs.setdefault("num_workers", 1)
        kwargs.setdefault("submit_timeout_seconds", 60.0)
        kwargs.setdefault("use_shm", True)
        return ProcessPoolBackend(bench.featurizer, **kwargs)

    @staticmethod
    def _wait(predicate, timeout: float = 15.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.02)
        return predicate()

    def test_factory_defaults_wire_the_fast_path(self, bench):
        backend = make_scoring_backend(
            "process+shm", featurizer=bench.featurizer, num_workers=2,
            submit_timeout_seconds=60.0,
        )
        try:
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.uses_shm
            assert backend._core.adaptive
            assert backend._autoscaler is not None
            assert backend._autoscaler.config.max_workers == 2
        finally:
            backend.close()

    def test_ring_wraparound_under_repeated_submits(
        self, bench, queries, candidate_plans
    ):
        """More submits than ring slots: slots recycle, predictions match."""
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = self._backend(bench, shm_slots_per_worker=2)
        try:
            for _ in range(5):
                np.testing.assert_allclose(
                    backend.submit(query, plans, version=network),
                    network.predict(query, plans),
                )
            stats = backend.stats()
            assert stats.shm_batches == 5
            assert stats.shm_fallbacks == 0
            assert stats.ring_occupancy == 0.0  # every lease came back
        finally:
            backend.close()

    def test_oversize_batch_falls_back_to_queue(
        self, bench, queries, candidate_plans
    ):
        """Payloads larger than a slot take the queue path, correctly."""
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = self._backend(bench, shm_slot_bytes=64)
        try:
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
            stats = backend.stats()
            assert stats.shm_batches == 0
            assert stats.shm_fallbacks == 1
        finally:
            backend.close()

    def test_sigkill_while_holding_slot_reclaims_lease(
        self, bench, queries, candidate_plans
    ):
        """A scorer killed mid-batch releases (not corrupts) its leases."""
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = self._backend(bench, max_respawns=1)
        backend._allow_crash_token = True
        errors: list[BaseException] = []

        def submit_stalled():
            try:
                backend.submit(query, plans, version=_STALL_TOKEN)
            except ScoringBackendError as error:
                errors.append(error)

        thread = threading.Thread(target=submit_stalled)
        thread.start()
        try:
            ring = backend._request_rings[0]
            holding = lambda: any(  # noqa: E731
                ring.state(slot) == SLOT_PROCESSING
                for slot in range(ring.num_slots)
            )
            assert self._wait(holding, timeout=30.0), (
                "scorer never took the PROCESSING lease"
            )
            os.kill(backend._processes[0].pid, signal.SIGKILL)
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "submit hung after the SIGKILL"
            assert errors, "the in-flight request must fail, not succeed"
            assert "died mid-batch" in str(errors[0])
            assert backend.stats().leases_reclaimed >= 1
            assert not holding()  # the lease went back to FREE
            # The pool survives: the respawned scorer serves correctly.
            assert self._wait(lambda: backend.alive_workers() == 1)
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
        finally:
            thread.join(timeout=1.0)
            backend.close()

    def test_stats_surface_per_worker_gauges(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        backend = self._backend(bench, num_workers=2)
        try:
            backend.submit(
                query, candidate_plans[query.name], version=network
            )
            stats = backend.stats()
            assert stats.workers_current == 2
            assert len(stats.worker_queue_depths) == 2
            assert len(stats.worker_inflight) == 2
        finally:
            backend.close()

    def test_service_metrics_expose_shm_gauges(self, bench, queries):
        """Satellite: the new gauges ride ``GET /v1/metrics``' JSON body."""
        network = small_network(bench.featurizer, seed=5)
        with PlannerService(
            network,
            planner=small_planner(),
            max_workers=2,
            scoring_backend="process+shm",
        ) as service:
            service.plan_many(queries[:2])
            body = service.metrics().to_json_dict()
            scoring = body["scoring"]
            assert scoring["shm_batches"] >= 1
            assert scoring["workers_current"] >= 1
            assert len(scoring["worker_queue_depths"]) >= 1
            assert len(scoring["worker_inflight"]) >= 1


# ---------------------------------------------------------------------- #
# Elastic pool membership (scale_up / scale_down plumbing)
# ---------------------------------------------------------------------- #
@pytest.mark.skipif(
    "process+shm" not in BACKENDS, reason="process+shm backend filtered out"
)
class TestPoolElasticity:
    def test_scale_up_then_down_round_trip(self, bench, queries, candidate_plans):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0,
            use_shm=True,
        )
        try:
            assert backend.active_workers() == 1
            assert backend.scale_up()
            assert backend.active_workers() == 2
            for _ in range(4):  # both workers serve correctly
                np.testing.assert_allclose(
                    backend.submit(query, plans, version=network),
                    network.predict(query, plans),
                )
            stats = backend.stats()
            assert stats.scale_ups == 1
            assert len(stats.worker_queue_depths) == 2
            assert backend.scale_down()
            assert backend.active_workers() == 1
            # The retiring worker drains gracefully: no crash, no respawn.
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
            stats = backend.stats()
            assert stats.scale_downs == 1
            assert stats.worker_crashes == 0
            assert stats.workers_respawned == 0
        finally:
            backend.close()

    def test_scale_down_refuses_the_last_worker(self, bench):
        backend = ProcessPoolBackend(bench.featurizer, num_workers=1, use_shm=True)
        try:
            assert not backend.scale_down()
            assert backend.active_workers() == 1
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Autoscaler hysteresis (fake pool, injected clock — no processes)
# ---------------------------------------------------------------------- #
class _FakePool:
    """Duck-typed stand-in for the autoscaler's pool taps."""

    def __init__(self, workers: int = 1):
        self.workers = workers
        self.depth = 0
        self.submitted = 0
        self.ups = 0
        self.downs = 0

    def queue_depth(self):
        return self.depth

    def submitted_count(self):
        return self.submitted

    def active_workers(self):
        return self.workers

    def scale_up(self):
        self.workers += 1
        self.ups += 1
        return True

    def scale_down(self):
        if self.workers <= 1:
            return False
        self.workers -= 1
        self.downs += 1
        return True


class TestPoolAutoscaler:
    @staticmethod
    def _config(**overrides) -> AutoscalerConfig:
        defaults = dict(
            min_workers=1, max_workers=4, ewma_alpha=1.0,
            high_watermark=2.0, low_watermark=0.25,
            up_hold_samples=2, down_hold_samples=3, cooldown_seconds=5.0,
        )
        defaults.update(overrides)
        return AutoscalerConfig(**defaults)

    def test_scale_up_waits_out_the_hold(self):
        pool = _FakePool(workers=1)
        scaler = PoolAutoscaler(pool, self._config())
        pool.depth = 6  # far above the high watermark
        assert scaler.sample_once(now=0.0) is None  # streak 1 of 2
        assert scaler.sample_once(now=1.0) == "up"
        assert pool.ups == 1

    def test_dead_band_resets_both_streaks(self):
        pool = _FakePool(workers=1)
        scaler = PoolAutoscaler(pool, self._config())
        pool.depth = 6
        assert scaler.sample_once(now=0.0) is None
        pool.depth = 1  # between the watermarks
        assert scaler.sample_once(now=1.0) is None
        pool.depth = 6
        assert scaler.sample_once(now=2.0) is None  # streak restarted
        assert pool.ups == 0

    def test_cooldown_spaces_scale_events(self):
        pool = _FakePool(workers=1)
        scaler = PoolAutoscaler(pool, self._config(up_hold_samples=1))
        pool.depth = 20
        assert scaler.sample_once(now=0.0) == "up"
        assert scaler.sample_once(now=1.0) is None  # cooling down
        assert scaler.sample_once(now=6.0) == "up"
        assert pool.ups == 2

    def test_scale_down_holds_much_longer(self):
        pool = _FakePool(workers=3)
        scaler = PoolAutoscaler(pool, self._config())
        pool.depth = 0
        assert scaler.sample_once(now=0.0) is None
        assert scaler.sample_once(now=1.0) is None
        assert scaler.sample_once(now=2.0) == "down"
        assert pool.downs == 1

    def test_bounds_are_hard_limits(self):
        pool = _FakePool(workers=4)
        scaler = PoolAutoscaler(pool, self._config(up_hold_samples=1))
        pool.depth = 100
        for step in range(5):
            assert scaler.sample_once(now=float(step * 10)) is None
        assert pool.ups == 0

        pool = _FakePool(workers=1)
        scaler = PoolAutoscaler(pool, self._config(down_hold_samples=1))
        pool.depth = 0
        for step in range(5):
            assert scaler.sample_once(now=float(step * 10)) is None
        assert pool.downs == 0

    def test_arrival_rate_ewma_tracks_submits(self):
        pool = _FakePool(workers=1)
        scaler = PoolAutoscaler(pool, self._config())
        scaler.sample_once(now=0.0)
        pool.submitted = 10
        scaler.sample_once(now=1.0)
        assert scaler.arrival_rate_ewma == pytest.approx(10.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(low_watermark=2.0, high_watermark=1.0)


# ---------------------------------------------------------------------- #
# Adaptive batch-size controller
# ---------------------------------------------------------------------- #
class TestAdaptiveBatching:
    def test_cap_grows_under_load_and_shrinks_back(self):
        from repro.scoring.core import ScoringCore

        core = ScoringCore(512, adaptive=True)
        assert core.batch_cap == 32  # the floor
        for _ in range(20):  # sustained deep queue: cap climbs to the max
            core.observe_load(64)
        assert core.batch_cap == 512
        for _ in range(40):  # drained queue: cap decays to the floor
            core.observe_load(0)
        assert core.batch_cap == 32
        assert core.snapshot().adaptive_batch_cap == 32

    def test_fixed_mode_never_moves(self):
        from repro.scoring.core import ScoringCore

        core = ScoringCore(512, adaptive=False)
        for _ in range(20):
            core.observe_load(64)
        assert core.batch_cap == 512
        for _ in range(40):
            core.observe_load(0)
        assert core.batch_cap == 512


# ---------------------------------------------------------------------- #
# Service fallback after repeated backend failures
# ---------------------------------------------------------------------- #
class _AlwaysFailingBackend:
    """A protocol-complete backend whose every submit fails."""

    def __init__(self):
        self.submits = 0
        self.closed = False
        self._lock = threading.Lock()

    def submit(self, query, plans, version=None):
        with self._lock:
            self.submits += 1
        raise ScoringBackendError("injected: scorer pool unavailable")

    def follow(self, registry):
        pass

    def stats(self):
        return ScoringBridgeStats()

    def close(self):
        self.closed = True


class TestServiceFallback:
    def test_falls_back_to_in_process_after_max_failures(self, bench, queries):
        network = small_network(bench.featurizer)
        failing = _AlwaysFailingBackend()
        service = PlannerService(
            network,
            planner=small_planner(),
            max_workers=1,
            scoring_backend=failing,
            max_backend_failures=2,
        )
        with service:
            # Failures surface to the waiting search as the typed error...
            for _ in range(2):
                with pytest.raises(ScoringBackendError):
                    service.plan(queries[0])
            # ...and past the cap the service serves via in-process scoring.
            response = service.plan(queries[0])
            assert response.plans
            reference = small_planner().search(queries[0], network)
            assert response.best_plan.fingerprint() == (
                reference.best_plan.fingerprint()
            )
            metrics = service.metrics()
            assert metrics.scoring_backend_failures == 2
            assert metrics.scoring_fallbacks == 1
            assert metrics.as_dict()["scoring_fallbacks"] == 1
        assert failing.closed  # the abandoned backend is still closed with us

    def test_fallback_disabled_keeps_failing(self, bench, queries):
        network = small_network(bench.featurizer)
        service = PlannerService(
            network,
            planner=small_planner(),
            max_workers=1,
            scoring_backend=_AlwaysFailingBackend(),
            max_backend_failures=None,
        )
        with service:
            for _ in range(4):
                with pytest.raises(ScoringBackendError):
                    service.plan(queries[0])
            assert service.metrics().scoring_fallbacks == 0

    def test_successes_reset_the_consecutive_counter(self, bench, queries):
        """Intermittent failures below the cap must never trip the fallback."""
        network = small_network(bench.featurizer)

        class Flaky(InProcessBackend):
            def __init__(self):
                super().__init__(lambda: network)
                self.calls = 0

            def submit(self, query, plans, version=None):
                self.calls += 1
                # Two isolated failures with a success in between: the
                # consecutive counter resets and never reaches the cap of 2.
                if self.calls in (1, 3):
                    raise ScoringBackendError("flaky")
                return super().submit(query, plans, version)

        service = PlannerService(
            network,
            planner=small_planner(),
            max_workers=1,
            scoring_backend=Flaky(),
            max_backend_failures=2,
        )
        with service:
            served = 0
            for _ in range(6):
                try:
                    response = service.plan(
                        PlanRequest(query=queries[0], k=2)
                    )
                except ScoringBackendError:
                    continue
                served += 1
                assert response.plans
            assert served > 0
            assert service.metrics().scoring_fallbacks == 0
