"""Plan validity checks against a query.

A plan is valid for a query when it covers exactly the query's aliases, scans
each alias exactly once, and every join node connects two sides that share at
least one join predicate (no cross products), matching the search space the
paper's beam search and DP enumerator explore.
"""

from __future__ import annotations

from repro.plans.nodes import PlanNode
from repro.sql.query import Query


class InvalidPlanError(ValueError):
    """Raised when a plan does not form a valid execution plan for a query."""


def validate_plan(query: Query, plan: PlanNode, require_complete: bool = True) -> None:
    """Validate ``plan`` against ``query``.

    Args:
        query: The query the plan claims to implement.
        plan: The plan tree.
        require_complete: When true, the plan must cover *all* query aliases;
            otherwise it may cover any non-empty subset (a partial plan).

    Raises:
        InvalidPlanError: If any structural rule is violated.
    """
    query_aliases = set(query.aliases)
    plan_aliases = set(plan.leaf_aliases)
    if not plan_aliases:
        raise InvalidPlanError("plan has no scan leaves")
    unknown = plan_aliases - query_aliases
    if unknown:
        raise InvalidPlanError(f"plan references aliases not in query: {sorted(unknown)}")
    if require_complete and plan_aliases != query_aliases:
        missing = query_aliases - plan_aliases
        raise InvalidPlanError(f"plan does not cover aliases: {sorted(missing)}")

    seen: list[str] = [s.alias for s in plan.iter_scans()]
    if len(seen) != len(set(seen)):
        raise InvalidPlanError(f"plan scans an alias more than once: {sorted(seen)}")

    alias_to_table = query.alias_to_table
    for scan_node in plan.iter_scans():
        if alias_to_table[scan_node.alias] != scan_node.table:
            raise InvalidPlanError(
                f"scan of alias {scan_node.alias!r} uses table {scan_node.table!r}, "
                f"query expects {alias_to_table[scan_node.alias]!r}"
            )

    for join_node in plan.iter_joins():
        predicates = query.joins_between(
            join_node.left.leaf_aliases, join_node.right.leaf_aliases
        )
        if not predicates:
            raise InvalidPlanError(
                "cross product: no join predicate between "
                f"{sorted(join_node.left.leaf_aliases)} and "
                f"{sorted(join_node.right.leaf_aliases)}"
            )


def is_valid_plan(query: Query, plan: PlanNode, require_complete: bool = True) -> bool:
    """Boolean form of :func:`validate_plan`."""
    try:
        validate_plan(query, plan, require_complete=require_complete)
    except InvalidPlanError:
        return False
    return True
