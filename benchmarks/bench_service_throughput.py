"""Planner-service throughput: queries/sec, cache-hit speedup, coalescing.

Not a paper figure — this measures the serving layer added on top of the
paper's beam search.  For each workload (JOB-like and TPC-H-like) the bench
plans the full query set three ways under one untrained value network:

- ``serial``      — plain ``BeamSearchPlanner.search`` in a loop (the
  pre-service baseline; also warms the shared featurizer cache so the service
  passes measure search + scoring, not featurisation);
- ``cold``        — ``PlannerService.plan_many`` with a worker pool and the
  batched scoring bridge, empty plan cache (every request misses);
- ``warm``        — the same requests again (every request hits the cache).

Two unified-API legs ride along on the JOB workload:

- ``deadline``    — the same requests with a per-request planning budget
  (25% of the mean serial search); beam search must cut off mid-search, which
  measurably reduces both planning time and states expanded;
- ``registry``    — a non-beam planner (``"postgres"`` from the benchmark's
  planner registry) served through the same ``plan_many`` cache/dedup path.

The numbers to watch: warm/cold speedup (must be >= 5x, it is typically a few
hundred x), the deadline cut, concurrent-vs-serial wall clock, and the
bridge's mean forward batch size versus the per-frontier batches of serial
search.  All headline figures are attached to ``benchmark.extra_info`` so
``--benchmark-json`` artifacts expose them to CI.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.evaluation.reporting import format_table
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.planning.envelope import PlanRequest
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark, make_tpch_benchmark

#: CI smoke mode (REPRO_BENCH_QUICK=1) shrinks the workloads further.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

MIN_WARM_SPEEDUP = 5.0


def _make_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=5, top_k=3, enumerate_scan_operators=False)


def _make_network(benchmark_bundle) -> ValueNetwork:
    return ValueNetwork(
        benchmark_bundle.featurizer,
        ValueNetworkConfig(
            query_hidden=32, query_embedding=16, tree_channels=(32, 16), head_hidden=16,
            seed=0,
        ),
    )


def _measure_workload(bundle, queries, workers: int = 4) -> dict:
    """Plan ``queries`` serially, then cold and warm through the service."""
    network = _make_network(bundle)
    planner = _make_planner()

    serial_started = time.perf_counter()
    serial_results = [planner.search(query, network) for query in queries]
    serial_seconds = time.perf_counter() - serial_started

    with bundle.planner_service(
        network, planner=_make_planner(), max_workers=workers
    ) as service:
        cold_started = time.perf_counter()
        cold = service.plan_many(queries)
        cold_seconds = time.perf_counter() - cold_started

        warm_started = time.perf_counter()
        warm = service.plan_many(queries)
        warm_seconds = time.perf_counter() - warm_started
        metrics = service.metrics()

    assert all(not response.cache_hit for response in cold)
    assert all(response.cache_hit for response in warm)
    # Concurrent planning returns the same best plans as the serial baseline.
    for direct, response in zip(serial_results, cold):
        assert direct.best_plan.fingerprint() == response.best_plan.fingerprint()

    count = len(queries)
    return {
        "queries": count,
        "serial_seconds": serial_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "serial_qps": count / serial_seconds if serial_seconds > 0 else 0.0,
        "cold_qps": count / cold_seconds if cold_seconds > 0 else 0.0,
        "warm_qps": count / warm_seconds if warm_seconds > 0 else 0.0,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "concurrent_speedup": serial_seconds / cold_seconds if cold_seconds > 0 else 0.0,
        "hit_rate": metrics.hit_rate,
        "mean_forward_batch": metrics.scoring.mean_batch_examples,
        "max_forward_batch": metrics.scoring.max_batch_examples,
    }


def _measure_deadline_cut(bundle, queries) -> dict:
    """Plan with and without per-request budgets; budgets must cut the search.

    A fresh network (new cache version) plans every query twice through a
    single-worker service: once with no budget, once with a budget of 25% of
    the mean unconstrained search time.  Beam search's budget-aware cutoff
    must truncate at least one search and reduce total planning work.
    """
    network = _make_network(bundle)
    planner = _make_planner()

    full_started = time.perf_counter()
    full_results = [planner.search(query, network) for query in queries]
    full_seconds = time.perf_counter() - full_started
    full_states = sum(result.states_expanded for result in full_results)
    budget = 0.25 * full_seconds / max(len(queries), 1)

    with PlannerService(network, planner=_make_planner(), max_workers=1) as service:
        responses = service.plan_many(
            PlanRequest(query=query, k=planner.top_k, deadline_seconds=budget)
            for query in queries
        )
        metrics = service.metrics()

    cut_seconds = sum(response.planning_seconds for response in responses)
    cut_states = sum(response.states_expanded for response in responses)
    truncated = sum(response.deadline_exceeded for response in responses)

    # The budget-aware cutoff must engage and must shrink the search.
    assert truncated > 0, "no search hit its planning budget"
    assert cut_states < full_states, (cut_states, full_states)
    assert metrics.deadline_exceeded_requests == truncated
    return {
        "budget_seconds": budget,
        "full_planning_seconds": full_seconds,
        "deadline_planning_seconds": cut_seconds,
        "deadline_cut": full_seconds / cut_seconds if cut_seconds > 0 else float("inf"),
        "full_states_expanded": full_states,
        "deadline_states_expanded": cut_states,
        "truncated_requests": truncated,
    }


def _measure_registry_routed(bundle, queries, workers: int = 2) -> dict:
    """Serve a non-beam registry planner through ``PlannerService.plan_many``."""
    registry = bundle.planner_registry(network=_make_network(bundle), seed=0)
    with PlannerService(planner=registry.get("postgres"), max_workers=workers) as service:
        cold_started = time.perf_counter()
        cold = service.plan_many(queries)
        cold_seconds = time.perf_counter() - cold_started
        warm = service.plan_many(queries)
        metrics = service.metrics()

    assert all(response.planner_name == "postgres" for response in cold)
    assert all(response.plans for response in cold)
    assert all(response.cache_hit for response in warm)
    return {
        "queries": len(queries),
        "cold_seconds": cold_seconds,
        "cold_qps": len(queries) / cold_seconds if cold_seconds > 0 else 0.0,
        "hit_rate": metrics.hit_rate,
    }


def _run_service_throughput(scale) -> dict:
    num_queries = 8 if QUICK else scale.num_queries
    job = make_job_benchmark(
        fact_rows=scale.fact_rows,
        num_queries=num_queries,
        num_templates=min(scale.num_templates, num_queries),
        test_size=min(scale.test_size, max(num_queries - 2, 1)),
        seed=0,
        size_range=scale.size_range,
    )
    tpch = make_tpch_benchmark(
        base_rows=scale.tpch_rows,
        queries_per_template=1 if QUICK else scale.tpch_queries_per_template,
        seed=0,
    )
    rows = {
        "job": _measure_workload(job, job.all_queries()),
        "tpch": _measure_workload(tpch, tpch.all_queries()),
    }
    extras = {
        "deadline": _measure_deadline_cut(job, job.all_queries()),
        "registry_postgres": _measure_registry_routed(job, job.all_queries()),
    }
    return {"workloads": rows, "extras": extras}


def bench_service_throughput(benchmark, scale):
    outcome = run_once(benchmark, _run_service_throughput, scale)
    result = outcome["workloads"]
    extras = outcome["extras"]
    print()
    print(
        format_table(
            [
                "workload", "queries", "serial q/s", "cold q/s", "warm q/s",
                "warm speedup", "mean batch",
            ],
            [
                [
                    name,
                    row["queries"],
                    f"{row['serial_qps']:.1f}",
                    f"{row['cold_qps']:.1f}",
                    f"{row['warm_qps']:.0f}",
                    f"{row['warm_speedup']:.0f}x",
                    f"{row['mean_forward_batch']:.1f}",
                ]
                for name, row in result.items()
            ],
            title="Planner service throughput (cold = empty cache, warm = repeat)",
        )
    )
    deadline = extras["deadline"]
    registry = extras["registry_postgres"]
    print(
        f"deadline budget={deadline['budget_seconds'] * 1e3:.1f}ms/query: "
        f"planning {deadline['full_planning_seconds']:.3f}s -> "
        f"{deadline['deadline_planning_seconds']:.3f}s "
        f"({deadline['deadline_cut']:.1f}x cut, "
        f"{deadline['truncated_requests']} truncated, "
        f"states {deadline['full_states_expanded']} -> "
        f"{deadline['deadline_states_expanded']})"
    )
    print(
        f"registry-routed postgres: {registry['queries']} queries at "
        f"{registry['cold_qps']:.1f} q/s cold, hit_rate {registry['hit_rate']:.2%}"
    )
    for name, row in result.items():
        for key in (
            "serial_qps", "cold_qps", "warm_qps", "warm_speedup",
            "concurrent_speedup", "mean_forward_batch",
        ):
            benchmark.extra_info[f"{name}_{key}"] = round(float(row[key]), 3)
        # The acceptance bar: a warm cache must be at least 5x faster.
        assert row["warm_speedup"] >= MIN_WARM_SPEEDUP, (name, row["warm_speedup"])
    for key in ("deadline_cut", "truncated_requests", "deadline_planning_seconds",
                "full_planning_seconds"):
        benchmark.extra_info[f"deadline_{key}"] = round(float(deadline[key]), 4)
    benchmark.extra_info["registry_postgres_cold_qps"] = round(registry["cold_qps"], 3)
    # A mid-search deadline must measurably cut beam-search planning time.
    assert deadline["deadline_planning_seconds"] < deadline["full_planning_seconds"]
