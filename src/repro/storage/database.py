"""The :class:`Database`: a schema plus its materialised tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.storage.table import Table

if TYPE_CHECKING:  # Imported lazily to avoid a catalog <-> storage import cycle.
    from repro.catalog.schema import Schema


@dataclass
class Database:
    """A populated database instance.

    Attributes:
        schema: The schema the tables conform to.
        tables: Mapping from table name to :class:`~repro.storage.table.Table`.
        scale: The data-generation scale factor this instance was built with.
    """

    schema: "Schema"
    tables: dict[str, Table] = field(default_factory=dict)
    scale: float = 1.0

    def add_table(self, table: Table) -> None:
        """Register a materialised table."""
        if table.name not in self.schema.tables:
            raise KeyError(f"table {table.name!r} is not part of schema {self.schema.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"database has no table {name!r}") from None

    def num_rows(self, name: str) -> int:
        """Row count of ``name``."""
        return self.table(name).num_rows

    def total_rows(self) -> int:
        """Total rows across all tables."""
        return sum(t.num_rows for t in self.tables.values())

    def build_join_indexes(self) -> None:
        """Build hash indexes on every primary and foreign key column.

        Mirrors the paper's setup step of creating all PK/FK indexes for the
        Join Order Benchmark (§8.1), which makes indexed nested-loop joins
        competitive and the search space harder.
        """
        for table_def in self.schema.tables.values():
            table = self.table(table_def.name)
            table.index("id")
            for fk in table_def.foreign_keys:
                table.index(fk.column)

    def describe(self) -> str:
        """A short multi-line summary of table sizes."""
        lines = [f"Database(schema={self.schema.name}, scale={self.scale})"]
        for name in self.schema.table_names():
            if name in self.tables:
                lines.append(f"  {name}: {self.tables[name].num_rows} rows")
        return "\n".join(lines)
