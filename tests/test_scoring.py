"""Tests for the pluggable scoring backends (`repro.scoring`).

Covers the wire format, the stateless ``ValueNetwork.from_state_dict`` /
``predict_from_state`` contract, snapshot persistence to disk, the backend
matrix (inproc / threaded / process) behind one protocol, process-backend
failure modes (crash mid-batch surfaces a typed error, never a hang), and
the planner service's in-process fallback after repeated backend failures.

The matrix half honours ``REPRO_SCORING_BACKENDS`` (comma-separated subset
of ``inproc,threaded,process``) so CI can shard one backend per job.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time

import numpy as np
import pytest

from repro.featurization.featurizer import SignatureFeaturizer, canonical_signature
from repro.lifecycle import ModelRegistry, ModelSnapshot
from repro.model.value_network import (
    StateDictMismatchError,
    ValueNetwork,
    ValueNetworkConfig,
)
from repro.planning.envelope import PlanRequest
from repro.scoring import (
    InProcessBackend,
    ProcessPoolBackend,
    ScoringBackend,
    ScoringBackendError,
    ScoringBridgeStats,
    ThreadedBatchingBackend,
    make_scoring_backend,
)
from repro.scoring.process import _CRASH_TOKEN
from repro.scoring.wire import pack_examples, unpack_examples
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark

_ALL_BACKENDS = ("inproc", "threaded", "process")
_requested = [
    name.strip()
    for name in os.environ.get("REPRO_SCORING_BACKENDS", "").split(",")
    if name.strip()
]
BACKENDS = tuple(name for name in _ALL_BACKENDS if name in _requested) or _ALL_BACKENDS


def small_config(seed: int = 0) -> ValueNetworkConfig:
    return ValueNetworkConfig(
        query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8,
        seed=seed,
    )


def small_network(featurizer, seed: int = 0) -> ValueNetwork:
    return ValueNetwork(featurizer, small_config(seed))


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=300, num_queries=8, num_templates=4, test_size=2,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def queries(bench):
    return list(bench.train_queries)


@pytest.fixture(scope="module")
def candidate_plans(bench, queries):
    """A handful of distinct plans per query to score."""
    network = small_network(bench.featurizer, seed=7)
    planner = BeamSearchPlanner(beam_size=4, top_k=4, enumerate_scan_operators=False)
    return {
        query.name: planner.search(query, network).plans for query in queries[:3]
    }


def make_backend(name: str, bench, provider=None, **kwargs) -> ScoringBackend:
    if name == "process":
        kwargs.setdefault("submit_timeout_seconds", 60.0)
        kwargs.setdefault("num_workers", 2)
    return make_scoring_backend(
        name, provider, featurizer=bench.featurizer, **kwargs
    )


# ---------------------------------------------------------------------- #
# Wire format
# ---------------------------------------------------------------------- #
class TestWireFormat:
    def test_round_trip_preserves_examples_and_predictions(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        examples = [bench.featurizer.featurize(query, plan) for plan in plans]
        restored = unpack_examples(pack_examples(examples))
        assert len(restored) == len(examples)
        for original, copy in zip(examples, restored):
            np.testing.assert_array_equal(original.query_encoding, copy.query_encoding)
            np.testing.assert_array_equal(original.plan.features, copy.plan.features)
            np.testing.assert_array_equal(original.plan.left, copy.plan.left)
            np.testing.assert_array_equal(original.plan.right, copy.plan.right)
            assert original.plan.num_nodes == copy.plan.num_nodes
        np.testing.assert_allclose(
            network.predict_examples(restored), network.predict_examples(examples)
        )

    def test_zero_examples_rejected(self):
        with pytest.raises(ValueError, match="zero examples"):
            pack_examples([])

    def test_garbage_payload_rejected(self):
        with pytest.raises(Exception):
            unpack_examples(b"definitely not an npz archive")


# ---------------------------------------------------------------------- #
# Stateless restore: from_state_dict / predict_from_state
# ---------------------------------------------------------------------- #
class TestStatelessRestore:
    def test_predict_from_state_matches_live_network(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer, seed=3)
        query = queries[0]
        plans = candidate_plans[query.name]
        examples = [bench.featurizer.featurize(query, plan) for plan in plans]
        np.testing.assert_allclose(
            ValueNetwork.predict_from_state(network.state_dict(), examples),
            network.predict_examples(examples),
        )

    def test_from_state_dict_without_schema(self, bench):
        network = small_network(bench.featurizer, seed=1)
        restored = ValueNetwork.from_state_dict(network.state_dict())
        assert isinstance(restored.featurizer, SignatureFeaturizer)
        assert restored.featurizer.signature() == canonical_signature(
            bench.featurizer.signature()
        )
        assert restored.config == network.config

    def test_signature_featurizer_cannot_featurize(self, bench, queries):
        network = small_network(bench.featurizer)
        restored = ValueNetwork.from_state_dict(network.state_dict())
        with pytest.raises(TypeError, match="cannot featurize"):
            restored.featurizer.featurize(queries[0], None)

    def test_missing_signature_rejected(self, bench):
        network = small_network(bench.featurizer)
        state = network.state_dict()
        del state["featurizer_signature"]
        with pytest.raises(StateDictMismatchError, match="no featurizer_signature"):
            ValueNetwork.from_state_dict(state)

    def test_non_state_dict_rejected(self):
        with pytest.raises(StateDictMismatchError, match="missing 'weights'"):
            ValueNetwork.from_state_dict({"weights?": "nope"})


# ---------------------------------------------------------------------- #
# Snapshot persistence (np.savez on the state_dict format)
# ---------------------------------------------------------------------- #
class TestSnapshotPersistence:
    def test_save_load_round_trip(self, bench, queries, candidate_plans, tmp_path):
        network = small_network(bench.featurizer, seed=4)
        snapshot = ModelSnapshot.capture(
            network, 7, source="unit", parent_version=3, tag="t"
        )
        path = snapshot.save(tmp_path / "model-v7.npz")
        loaded = ModelSnapshot.load(path)
        assert loaded.version == 7
        assert loaded.source == "unit"
        assert loaded.parent_version == 3
        assert loaded.tag == "t"
        assert loaded.created_at == pytest.approx(snapshot.created_at)
        assert loaded.featurizer_signature == canonical_signature(
            bench.featurizer.signature()
        )
        query = queries[0]
        plans = candidate_plans[query.name]
        restored = loaded.restore(bench.featurizer)
        np.testing.assert_allclose(
            restored.predict(query, plans), network.predict(query, plans)
        )
        # And the stateless route works off the loaded state too.
        examples = [bench.featurizer.featurize(query, plan) for plan in plans]
        np.testing.assert_allclose(
            ValueNetwork.from_state_dict(loaded.state).predict_examples(examples),
            network.predict(query, plans),
        )

    def test_loaded_weights_are_frozen(self, bench, tmp_path):
        network = small_network(bench.featurizer)
        path = ModelSnapshot.capture(network, 1).save(tmp_path / "m.npz")
        loaded = ModelSnapshot.load(path)
        weights = loaded.state["weights"]
        name = next(iter(weights))
        with pytest.raises(ValueError):
            weights[name][0] = 1.0

    def test_registry_persists_on_promote(self, bench, tmp_path):
        registry = ModelRegistry(persist_dir=tmp_path / "models")
        snapshot = registry.register(small_network(bench.featurizer), source="a")
        assert not registry.snapshot_path(snapshot.version).exists()
        registry.promote(snapshot.version)
        path = registry.snapshot_path(snapshot.version)
        assert path.exists()
        assert ModelSnapshot.load(path).version == snapshot.version

    def test_registry_subscribers_follow_promotions_and_rollbacks(self, bench):
        registry = ModelRegistry()
        seen: list[int] = []
        registry.subscribe(lambda snapshot: seen.append(snapshot.version))
        first = registry.register(small_network(bench.featurizer, seed=0))
        second = registry.register(small_network(bench.featurizer, seed=1))
        registry.promote(first.version)
        registry.promote(second.version)
        registry.rollback()
        assert seen == [first.version, second.version, first.version]

    def test_unsubscribed_listeners_stop_receiving(self, bench):
        registry = ModelRegistry()
        seen: list[int] = []

        def listener(snapshot):
            seen.append(snapshot.version)

        registry.subscribe(listener)
        first = registry.register(small_network(bench.featurizer, seed=0))
        registry.promote(first.version)
        registry.unsubscribe(listener)
        second = registry.register(small_network(bench.featurizer, seed=1))
        registry.promote(second.version)
        assert seen == [first.version]

    def test_raising_listener_never_unwinds_a_promotion(self, bench):
        registry = ModelRegistry()

        def bad_listener(snapshot):
            raise RuntimeError("listener bug")

        registry.subscribe(bad_listener)
        snapshot = registry.register(small_network(bench.featurizer))
        with pytest.warns(RuntimeWarning, match="listener"):
            registry.promote(snapshot.version)
        assert registry.serving_version == snapshot.version

    @pytest.mark.skipif(
        "process" not in BACKENDS, reason="process backend filtered out"
    )
    def test_closed_process_backend_detaches_from_registry(self, bench):
        registry = ModelRegistry()
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0
        )
        backend.follow(registry)
        spool = backend._spool_dir
        first = registry.register(small_network(bench.featurizer, seed=0))
        registry.promote(first.version)
        backend.close()
        assert not os.path.exists(spool)
        # Later promotions must not resurrect the closed backend's spool.
        second = registry.register(small_network(bench.featurizer, seed=1))
        registry.promote(second.version)
        assert not os.path.exists(spool)


# ---------------------------------------------------------------------- #
# The backend matrix: one protocol, three implementations
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend_name", BACKENDS)
class TestBackendMatrix:
    def test_submit_matches_direct_predict(
        self, backend_name, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer, seed=0)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = make_backend(backend_name, bench)
        try:
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
            stats = backend.stats()
            assert stats.requests == 1
            assert stats.examples == len(plans)
        finally:
            backend.close()

    def test_version_pins_are_respected(
        self, backend_name, bench, queries, candidate_plans
    ):
        net_a = small_network(bench.featurizer, seed=0)
        net_b = small_network(bench.featurizer, seed=9)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = make_backend(backend_name, bench)
        try:
            scored_a = backend.submit(query, plans, version=net_a)
            scored_b = backend.submit(query, plans, version=net_b)
            np.testing.assert_allclose(scored_a, net_a.predict(query, plans))
            np.testing.assert_allclose(scored_b, net_b.predict(query, plans))
            assert not np.allclose(scored_a, scored_b)
        finally:
            backend.close()

    def test_search_through_backend_is_invisible(
        self, backend_name, bench, queries
    ):
        """The refactor must not change what beam search finds."""
        network = small_network(bench.featurizer, seed=2)
        planner = small_planner()
        backend = make_backend(backend_name, bench)
        try:
            for query in queries[:3]:
                direct = planner.search(query, network)
                routed = planner.search(
                    query,
                    network,
                    score_fn=lambda q, p: backend.submit(q, p, version=network),
                )
                assert [p.fingerprint() for p in routed.plans] == [
                    p.fingerprint() for p in direct.plans
                ]
                np.testing.assert_allclose(
                    routed.predicted_latencies, direct.predicted_latencies
                )
        finally:
            backend.close()

    def test_follow_registry_promotions_propagate_by_version(
        self, backend_name, bench, queries, candidate_plans
    ):
        net_a = small_network(bench.featurizer, seed=0)
        net_b = small_network(bench.featurizer, seed=9)
        query = queries[0]
        plans = candidate_plans[query.name]
        registry = ModelRegistry()
        backend = make_backend(backend_name, bench)
        try:
            backend.follow(registry)
            first = registry.register(net_a)
            registry.promote(first.version)
            np.testing.assert_allclose(
                backend.submit(query, plans), net_a.predict(query, plans)
            )
            second = registry.register(net_b)
            registry.promote(second.version)
            np.testing.assert_allclose(
                backend.submit(query, plans), net_b.predict(query, plans)
            )
            # Explicit registry-version pins resolve too (old version stays
            # servable for in-flight requests pinned before the promotion).
            np.testing.assert_allclose(
                backend.submit(query, plans, version=first.version),
                net_a.predict(query, plans),
            )
        finally:
            backend.close()

    def test_empty_plans_scored_as_empty(self, backend_name, bench, queries):
        backend = make_backend(backend_name, bench)
        try:
            result = backend.submit(queries[0], [])
            assert result.shape == (0,)
        finally:
            backend.close()

    def test_closed_backend_rejects_submits(
        self, backend_name, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        backend = make_backend(backend_name, bench)
        backend.close()
        with pytest.raises(RuntimeError):
            backend.submit(
                queries[0], candidate_plans[queries[0].name], version=network
            )

    def test_max_batch_records_true_chunk_sizes(
        self, backend_name, bench, queries, candidate_plans
    ):
        """Regression: ``max_batch_examples`` is the largest chunk actually
        run, and chunking accounts for every example exactly once."""
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = list(candidate_plans[query.name])
        assert len(plans) >= 3
        backend = make_backend(backend_name, bench, max_batch_size=2)
        try:
            predictions = backend.submit(query, plans, version=network)
            np.testing.assert_allclose(predictions, network.predict(query, plans))
            stats = backend.stats()
            assert stats.examples == len(plans)
            expected_batches = (len(plans) + 1) // 2
            assert stats.forward_batches == expected_batches
            assert stats.max_batch_examples == 2
        finally:
            backend.close()

    def test_service_parity_with_serial_search(self, backend_name, bench, queries):
        network = small_network(bench.featurizer, seed=5)
        planner = small_planner()
        serial = [planner.search(query, network) for query in queries]
        with PlannerService(
            network,
            planner=small_planner(),
            max_workers=2,
            scoring_backend=backend_name,
        ) as service:
            responses = service.plan_many(queries)
            for direct, response in zip(serial, responses):
                assert not response.cache_hit
                assert response.best_plan.fingerprint() == (
                    direct.best_plan.fingerprint()
                )
            # Coalesced traffic under the same backend stays correct.
            warm = service.plan_many(queries)
            assert all(response.cache_hit for response in warm)


# ---------------------------------------------------------------------- #
# Stats snapshots cannot drift (dataclasses.replace copies every field)
# ---------------------------------------------------------------------- #
class TestStatsSnapshotDrift:
    def test_every_field_survives_the_snapshot(self, bench):
        backend = ThreadedBatchingBackend(
            lambda: None, featurizer=bench.featurizer
        )
        try:
            internal = backend._core._stats
            for index, field in enumerate(dataclasses.fields(ScoringBridgeStats)):
                setattr(internal, field.name, index + 1)
            snapshot = backend.stats()
            for index, field in enumerate(dataclasses.fields(ScoringBridgeStats)):
                assert getattr(snapshot, field.name) == index + 1, (
                    f"stats() dropped field {field.name!r}; snapshots must use "
                    f"dataclasses.replace, not hand-copied fields"
                )
            # The snapshot is a copy: mutating it never touches the counters.
            snapshot.requests = 10_000
            assert backend._core._stats.requests != 10_000
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Process-backend failure modes
# ---------------------------------------------------------------------- #
@pytest.mark.skipif("process" not in BACKENDS, reason="process backend filtered out")
class TestProcessBackendFailures:
    def test_crash_mid_batch_surfaces_typed_error_not_hang(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=2, submit_timeout_seconds=60.0
        )
        backend._allow_crash_token = True
        try:
            # Warm path first: both workers serve.
            backend.submit(query, plans, version=network)
            with pytest.raises(ScoringBackendError, match="died mid-batch"):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            assert backend.stats().worker_crashes == 1
            # The surviving worker keeps serving subsequent requests.
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
            assert backend.alive_workers() == 1
        finally:
            backend.close()

    def test_all_workers_dead_rejects_immediately(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=2, submit_timeout_seconds=60.0
        )
        backend._allow_crash_token = True
        try:
            for _ in range(2):
                with pytest.raises(ScoringBackendError):
                    backend.submit(query, plans, version=_CRASH_TOKEN)
            assert backend.alive_workers() == 0
            with pytest.raises(ScoringBackendError, match="all scorer processes"):
                backend.submit(query, plans, version=network)
        finally:
            backend.close()

    def test_unresolvable_version_is_typed(self, bench, queries, candidate_plans):
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0
        )
        try:
            with pytest.raises(ScoringBackendError, match="not .*following"):
                backend.submit(queries[0], candidate_plans[queries[0].name], version=42)
            # Negative pins (including an unarmed crash token) never reach
            # the scorer processes.
            with pytest.raises(ScoringBackendError, match="cannot resolve"):
                backend.submit(
                    queries[0], candidate_plans[queries[0].name], version=_CRASH_TOKEN
                )
            assert backend.alive_workers() == 1
        finally:
            backend.close()


@pytest.mark.skipif("process" not in BACKENDS, reason="process backend filtered out")
class TestProcessBackendRespawn:
    """With a ``max_respawns`` budget, crashed scorers are replaced."""

    @staticmethod
    def _wait_alive(backend, count: int, timeout: float = 15.0) -> int:
        deadline = time.monotonic() + timeout
        while backend.alive_workers() != count and time.monotonic() < deadline:
            time.sleep(0.05)
        return backend.alive_workers()

    def test_crashed_worker_respawns_and_serves(
        self, bench, queries, candidate_plans
    ):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0,
            max_respawns=2,
        )
        backend._allow_crash_token = True
        try:
            # The crash still fails its own batch with the typed error...
            with pytest.raises(ScoringBackendError, match="died mid-batch"):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            # ...but the slot is refilled instead of the pool shrinking to 0.
            assert self._wait_alive(backend, 1) == 1
            stats = backend.stats()
            assert stats.worker_crashes == 1
            assert stats.workers_respawned == 1
            # The respawned worker restores the snapshot from the spool and
            # serves correct predictions.
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                network.predict(query, plans),
            )
        finally:
            backend.close()

    def test_respawn_budget_is_bounded(self, bench, queries, candidate_plans):
        network = small_network(bench.featurizer)
        query = queries[0]
        plans = candidate_plans[query.name]
        backend = ProcessPoolBackend(
            bench.featurizer, num_workers=1, submit_timeout_seconds=60.0,
            max_respawns=1,
        )
        backend._allow_crash_token = True
        try:
            with pytest.raises(ScoringBackendError, match="died mid-batch"):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            assert self._wait_alive(backend, 1) == 1
            # Second crash: the pool-wide budget is spent, no replacement.
            with pytest.raises(ScoringBackendError):
                backend.submit(query, plans, version=_CRASH_TOKEN)
            assert self._wait_alive(backend, 0) == 0
            stats = backend.stats()
            assert stats.worker_crashes == 2
            assert stats.workers_respawned == 1
            with pytest.raises(ScoringBackendError, match="all scorer processes"):
                backend.submit(query, plans, version=network)
        finally:
            backend.close()

    def test_default_keeps_historical_no_respawn_behaviour(self):
        backend = ProcessPoolBackend(num_workers=1)
        try:
            assert backend.max_respawns == 0
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Service fallback after repeated backend failures
# ---------------------------------------------------------------------- #
class _AlwaysFailingBackend:
    """A protocol-complete backend whose every submit fails."""

    def __init__(self):
        self.submits = 0
        self.closed = False
        self._lock = threading.Lock()

    def submit(self, query, plans, version=None):
        with self._lock:
            self.submits += 1
        raise ScoringBackendError("injected: scorer pool unavailable")

    def follow(self, registry):
        pass

    def stats(self):
        return ScoringBridgeStats()

    def close(self):
        self.closed = True


class TestServiceFallback:
    def test_falls_back_to_in_process_after_max_failures(self, bench, queries):
        network = small_network(bench.featurizer)
        failing = _AlwaysFailingBackend()
        service = PlannerService(
            network,
            planner=small_planner(),
            max_workers=1,
            scoring_backend=failing,
            max_backend_failures=2,
        )
        with service:
            # Failures surface to the waiting search as the typed error...
            for _ in range(2):
                with pytest.raises(ScoringBackendError):
                    service.plan(queries[0])
            # ...and past the cap the service serves via in-process scoring.
            response = service.plan(queries[0])
            assert response.plans
            reference = small_planner().search(queries[0], network)
            assert response.best_plan.fingerprint() == (
                reference.best_plan.fingerprint()
            )
            metrics = service.metrics()
            assert metrics.scoring_backend_failures == 2
            assert metrics.scoring_fallbacks == 1
            assert metrics.as_dict()["scoring_fallbacks"] == 1
        assert failing.closed  # the abandoned backend is still closed with us

    def test_fallback_disabled_keeps_failing(self, bench, queries):
        network = small_network(bench.featurizer)
        service = PlannerService(
            network,
            planner=small_planner(),
            max_workers=1,
            scoring_backend=_AlwaysFailingBackend(),
            max_backend_failures=None,
        )
        with service:
            for _ in range(4):
                with pytest.raises(ScoringBackendError):
                    service.plan(queries[0])
            assert service.metrics().scoring_fallbacks == 0

    def test_successes_reset_the_consecutive_counter(self, bench, queries):
        """Intermittent failures below the cap must never trip the fallback."""
        network = small_network(bench.featurizer)

        class Flaky(InProcessBackend):
            def __init__(self):
                super().__init__(lambda: network)
                self.calls = 0

            def submit(self, query, plans, version=None):
                self.calls += 1
                # Two isolated failures with a success in between: the
                # consecutive counter resets and never reaches the cap of 2.
                if self.calls in (1, 3):
                    raise ScoringBackendError("flaky")
                return super().submit(query, plans, version)

        service = PlannerService(
            network,
            planner=small_planner(),
            max_workers=1,
            scoring_backend=Flaky(),
            max_backend_failures=2,
        )
        with service:
            served = 0
            for _ in range(6):
                try:
                    response = service.plan(
                        PlanRequest(query=queries[0], k=2)
                    )
                except ScoringBackendError:
                    continue
                served += 1
                assert response.plans
            assert served > 0
            assert service.metrics().scoring_fallbacks == 0
