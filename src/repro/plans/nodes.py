"""Plan node classes.

Plans are immutable, hashable binary trees.  ``fingerprint()`` provides a
stable string identity used by the plan cache, visit counts for safe
exploration, and experience deduplication (Table 1 of the paper counts
"unique plans" by exactly this identity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class ScanOperator(str, enum.Enum):
    """Physical scan operators."""

    SEQ_SCAN = "SeqScan"
    INDEX_SCAN = "IndexScan"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class JoinOperator(str, enum.Enum):
    """Physical join operators."""

    HASH_JOIN = "HashJoin"
    MERGE_JOIN = "MergeJoin"
    NESTED_LOOP = "NestedLoop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PlanNode:
    """Base class for plan tree nodes."""

    #: Aliases of the base tables covered by this subtree.
    leaf_aliases: frozenset[str]

    def fingerprint(self) -> str:
        """A stable string identity for the (sub)plan."""
        raise NotImplementedError

    def logical_fingerprint(self) -> str:
        """Identity ignoring physical operators (join order/shape only)."""
        raise NotImplementedError

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Yield every node in the subtree (preorder)."""
        raise NotImplementedError

    def iter_joins(self) -> Iterator["JoinNode"]:
        """Yield every join node in the subtree (preorder)."""
        for node in self.iter_nodes():
            if isinstance(node, JoinNode):
                yield node

    def iter_scans(self) -> Iterator["ScanNode"]:
        """Yield every scan leaf in the subtree (preorder)."""
        for node in self.iter_nodes():
            if isinstance(node, ScanNode):
                yield node

    def iter_subplans(self) -> Iterator["PlanNode"]:
        """Yield every subplan (each node viewed as the root of its subtree).

        This is the ``∀ T' ⊆ T`` enumeration used by the data-augmentation
        procedure of §3.2 / §4.1.
        """
        return self.iter_nodes()

    @property
    def num_tables(self) -> int:
        """Number of base tables joined by this subtree."""
        return len(self.leaf_aliases)

    @property
    def num_joins(self) -> int:
        """Number of join nodes in this subtree."""
        return sum(1 for _ in self.iter_joins())

    @property
    def height(self) -> int:
        """Tree height (a single scan has height 1)."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """Multi-line, indented rendering of the plan tree."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.fingerprint()


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """A leaf: scanning one base table alias.

    Attributes:
        alias: Query alias being scanned.
        table: Physical table name.
        operator: Physical scan operator.
    """

    alias: str
    table: str
    operator: ScanOperator = ScanOperator.SEQ_SCAN

    def __post_init__(self) -> None:
        object.__setattr__(self, "leaf_aliases", frozenset((self.alias,)))

    def fingerprint(self) -> str:
        return f"{self.operator.value}({self.alias})"

    def logical_fingerprint(self) -> str:
        return f"Scan({self.alias})"

    def iter_nodes(self) -> Iterator[PlanNode]:
        yield self

    @property
    def height(self) -> int:
        return 1

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"{self.operator.value} {self.table} AS {self.alias}"

    def with_operator(self, operator: ScanOperator) -> "ScanNode":
        """Return a copy using a different physical scan operator."""
        return ScanNode(self.alias, self.table, operator)


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """An internal node joining two subplans.

    Attributes:
        left: Left input (build side for hash joins, outer side for nested
            loops).
        right: Right input (probe side / inner side).
        operator: Physical join operator.
    """

    left: PlanNode
    right: PlanNode
    operator: JoinOperator = JoinOperator.HASH_JOIN

    def __post_init__(self) -> None:
        overlap = self.left.leaf_aliases & self.right.leaf_aliases
        if overlap:
            raise ValueError(f"join inputs overlap on aliases {sorted(overlap)}")
        object.__setattr__(
            self, "leaf_aliases", self.left.leaf_aliases | self.right.leaf_aliases
        )

    def fingerprint(self) -> str:
        return (
            f"{self.operator.value}({self.left.fingerprint()},"
            f"{self.right.fingerprint()})"
        )

    def logical_fingerprint(self) -> str:
        return (
            f"Join({self.left.logical_fingerprint()},"
            f"{self.right.logical_fingerprint()})"
        )

    def iter_nodes(self) -> Iterator[PlanNode]:
        yield self
        yield from self.left.iter_nodes()
        yield from self.right.iter_nodes()

    @property
    def height(self) -> int:
        return 1 + max(self.left.height, self.right.height)

    def describe(self, indent: int = 0) -> str:
        lines = [" " * indent + self.operator.value]
        lines.append(self.left.describe(indent + 2))
        lines.append(self.right.describe(indent + 2))
        return "\n".join(lines)

    def with_operator(self, operator: JoinOperator) -> "JoinNode":
        """Return a copy using a different physical join operator."""
        return JoinNode(self.left, self.right, operator)
