"""Sharded gateway: pre-forked HTTP workers over one port + a shared cache tier.

One :class:`~repro.server.app.PlanningServer` process is GIL-bound on the
wire path (JSON codec + dispatch) the same way scoring was before the process
pool.  This module scales the gateway out without changing the worker:

- :class:`ShardedGateway` pre-forks N worker processes, each running today's
  ``PlanningServer`` unchanged, all accepting on **one shared listening
  port**.  On platforms with ``SO_REUSEPORT`` every worker binds its own
  socket and the kernel load-balances connections; elsewhere the supervisor
  binds a single listening socket and the forked workers accept on the
  inherited fd (the classic pre-fork model).  A supervisor thread
  health-checks the shard via ``/healthz``, respawns crashed workers within a
  pool-wide ``max_respawns`` budget (the
  :class:`~repro.scoring.process.ProcessPoolBackend` idiom), and drains
  workers gracefully on shutdown.
- :class:`PlanCacheServer` is the **owner-process plan-cache tier**: a
  thread-per-connection LRU server speaking a small length-prefixed binary
  protocol over a Unix socket, keyed by the service cache key
  ``(fingerprint, planner version, k, knobs)`` and tagged by version so
  hot-swap invalidation works across processes.
- :class:`SharedCacheClient` is the worker-side connection.  Every operation
  is best-effort: a crashed or unreachable cache server degrades the worker
  to its local LRU (:class:`~repro.service.cache.TieredPlanCache` layers the
  two), never to failed foreground requests.
- :class:`OpsBroadcastServer` / :class:`OpsChannelClient` are the
  **ops-coherence channel**: the kernel load-balances connections, so a
  ``promote``/``rollback`` POST lands on one worker — the receiving worker
  re-broadcasts it through the supervisor's bus and every sibling applies it
  locally, keeping the whole shard serving the same version.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import socket
import struct
import tempfile
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.service.cache import ServicePlanCache, TieredPlanCache
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots, render_snapshot
from repro.telemetry.profiling import flamegraph_from_profile, merge_profiles
from repro.telemetry.trace import add_span, current_trace_id, span as trace_span

if TYPE_CHECKING:
    from repro.server.app import PlanningServer

#: Cache-tier address: a Unix-socket path, or a TCP ``(host, port)`` pair on
#: platforms without ``AF_UNIX``.
CacheAddress = "str | tuple[str, int]"

#: Largest accepted protocol frame (a memoised top-k result is a few KB; this
#: bound keeps a confused peer from buffering the owner process to death).
MAX_FRAME_BYTES = 8 * 1024 * 1024

# Protocol op bytes (request payload = op + body) and reply status bytes.
_OP_GET = 0x47  # "G" + key            -> HIT + value | MISS
_OP_PUT = 0x50  # "P" + klen,key,tlen,tag,value -> OK
_OP_EXISTS = 0x45  # "E" + key         -> HIT | MISS
_OP_INVALIDATE = 0x49  # "I" + tag     -> OK + u32 dropped
_OP_CLEAR = 0x43  # "C"                -> OK
_OP_STATS = 0x53  # "S"                -> OK + json
_OP_PING = 0x3F  # "?"                 -> OK
_OP_TRACED = 0x54  # "T" + u8 idlen + trace id + inner op -> TRACED + f64 + reply
_REPLY_OK = b"O"
_REPLY_HIT = b"H"
_REPLY_MISS = b"M"
_REPLY_ERROR = b"X"
_REPLY_TRACED = b"T"

#: Span labels for traced cache ops (client side).
_OP_NAMES = {
    _OP_GET: "get",
    _OP_PUT: "put",
    _OP_EXISTS: "exists",
    _OP_INVALIDATE: "invalidate",
    _OP_CLEAR: "clear",
    _OP_STATS: "stats",
    _OP_PING: "ping",
}


# ---------------------------------------------------------------------- #
# Length-prefixed framing
# ---------------------------------------------------------------------- #
def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks += chunk
    return bytes(chunks)


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _recv_frame(sock: socket.socket) -> bytes:
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds the protocol cap")
    return _recv_exact(sock, length) if length else b""


def _make_server_socket(address) -> socket.socket:
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(address)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(tuple(address))
    sock.listen(64)
    return sock


def _connect(address, timeout: float) -> socket.socket:
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(tuple(address) if not isinstance(address, str) else address)
    return sock


# ---------------------------------------------------------------------- #
# The owner-process cache tier
# ---------------------------------------------------------------------- #
class PlanCacheServer:
    """The shared plan-cache tier: one LRU, owned by the supervisor process.

    Workers reach it over a Unix socket (TCP loopback where ``AF_UNIX`` is
    unavailable) with the length-prefixed protocol above.  Entries carry a
    *version tag* (the cache key's planner/model version component), so a hot
    swap can invalidate a displaced version's plans across every worker with
    one ``invalidate`` call.

    Args:
        address: Unix-socket path (or TCP ``(host, port)``) to listen on.
        capacity: Maximum entries; least recently used are evicted when full.
        min_planning_seconds: Admission floor — a put whose JSON value
            reports ``planning_seconds`` below this is acknowledged but not
            stored (and counted in ``admission_skips``).  Cheap-to-replan
            entries are not worth a shared-tier slot: admitting them evicts
            plans that took real search time.  0 admits everything.
    """

    def __init__(
        self, address, capacity: int = 8192, *, min_planning_seconds: float = 0.0
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if min_planning_seconds < 0:
            raise ValueError("min_planning_seconds must be >= 0")
        self.address = address
        self.capacity = capacity
        self.min_planning_seconds = min_planning_seconds
        self._admission_skips = 0
        self._entries: OrderedDict[bytes, tuple[bytes, bytes]] = OrderedDict()
        self._by_tag: dict[bytes, set[bytes]] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._inserts = 0
        self._evictions = 0
        self._invalidated = 0
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "PlanCacheServer":
        """Bind the socket and serve connections on background threads."""
        if self._closed:
            raise RuntimeError("cache server is closed")
        if self._listener is not None:
            return self
        self._listener = _make_server_socket(self.address)
        if not isinstance(self.address, str):
            self.address = self._listener.getsockname()  # resolve port 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="plan-cache-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, sever live connections, release the socket."""
        if self._closed:
            return
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if isinstance(self.address, str):
            try:
                os.unlink(self.address)
            except OSError:
                pass

    def __enter__(self) -> "PlanCacheServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._conn_lock:
                if self._closed:
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="plan-cache-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                request = _recv_frame(conn)
                _send_frame(conn, self._handle(request))
        except (ConnectionError, OSError, struct.error):
            pass  # peer went away (worker exit, crash-test kill, close())
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Protocol ops
    # ------------------------------------------------------------------ #
    def _handle(self, request: bytes) -> bytes:
        if not request:
            return _REPLY_ERROR + b"empty frame"
        op, body = request[0], request[1:]
        if op == _OP_TRACED:
            # Traced envelope: u8 id-length + trace id + the inner request.
            # The server times the inner op and ships the duration back; the
            # worker grafts it into the originating request's span tree.
            if not body or len(body) < 1 + body[0]:
                return _REPLY_ERROR + b"malformed traced frame"
            inner = body[1 + body[0] :]
            started = time.perf_counter()
            reply = self._handle(inner)
            return (
                _REPLY_TRACED
                + struct.pack(">d", time.perf_counter() - started)
                + reply
            )
        if op == _OP_GET:
            value = self._get(body)
            return _REPLY_MISS if value is None else _REPLY_HIT + value
        if op == _OP_PUT:
            return self._put(body)
        if op == _OP_EXISTS:
            with self._lock:
                return _REPLY_HIT if body in self._entries else _REPLY_MISS
        if op == _OP_INVALIDATE:
            return _REPLY_OK + struct.pack(">I", self._invalidate(body))
        if op == _OP_CLEAR:
            with self._lock:
                self._entries.clear()
                self._by_tag.clear()
            return _REPLY_OK
        if op == _OP_STATS:
            return _REPLY_OK + json.dumps(self.stats()).encode("utf-8")
        if op == _OP_PING:
            return _REPLY_OK
        return _REPLY_ERROR + f"unknown op {op:#x}".encode("ascii")

    def _get(self, key: bytes) -> bytes | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[1]

    def _put(self, body: bytes) -> bytes:
        try:
            (key_len,) = struct.unpack(">I", body[:4])
            key = body[4 : 4 + key_len]
            offset = 4 + key_len
            (tag_len,) = struct.unpack(">I", body[offset : offset + 4])
            tag = body[offset + 4 : offset + 4 + tag_len]
            value = body[offset + 4 + tag_len :]
            if len(key) != key_len or len(tag) != tag_len:
                raise ValueError("truncated put body")
        except (struct.error, ValueError):
            return _REPLY_ERROR + b"malformed put"
        if self.min_planning_seconds > 0 and not self._admit(value):
            with self._lock:
                self._admission_skips += 1
            return _REPLY_OK  # acknowledged, deliberately not stored
        with self._lock:
            old = self._entries.get(key)
            if old is not None and old[0] != tag:
                self._by_tag.get(old[0], set()).discard(key)
            self._entries[key] = (tag, value)
            self._entries.move_to_end(key)
            self._by_tag.setdefault(tag, set()).add(key)
            self._inserts += 1
            while len(self._entries) > self.capacity:
                evicted, (evicted_tag, _) = self._entries.popitem(last=False)
                keys = self._by_tag.get(evicted_tag)
                if keys is not None:
                    keys.discard(evicted)
                    if not keys:
                        del self._by_tag[evicted_tag]
                self._evictions += 1
        return _REPLY_OK

    def _admit(self, value: bytes) -> bool:
        """Admission check: does the entry clear the planning-time floor?

        Values are the JSON wire encoding of a
        :class:`~repro.service.planner_service.PlanResult`; anything that
        does not decode to one (or predates ``planning_seconds``) is
        admitted — the floor only ever skips entries it can prove cheap.
        """
        try:
            decoded = json.loads(value.decode("utf-8"))
            planning_seconds = decoded["planning_seconds"]
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            return True
        if not isinstance(planning_seconds, (int, float)):
            return True
        return planning_seconds >= self.min_planning_seconds

    def _invalidate(self, tag: bytes) -> int:
        with self._lock:
            keys = self._by_tag.pop(tag, set())
            for key in keys:
                self._entries.pop(key, None)
            self._invalidated += len(keys)
            return len(keys)

    def stats(self) -> dict:
        """Tier-wide counters (all workers' traffic folded together)."""
        with self._lock:
            hits, misses = self._hits, self._misses
            report = {
                "hits": hits,
                "misses": misses,
                "inserts": self._inserts,
                "evictions": self._evictions,
                "invalidated": self._invalidated,
                "size": len(self._entries),
                "versions": len(self._by_tag),
                "capacity": self.capacity,
                "admission_skips": self._admission_skips,
                "min_planning_seconds": self.min_planning_seconds,
            }
        lookups = hits + misses
        report["hit_rate"] = hits / lookups if lookups else 0.0
        return report


# ---------------------------------------------------------------------- #
# The worker-side client
# ---------------------------------------------------------------------- #
class SharedCacheClient:
    """One worker's connection to the shared cache tier.

    Satisfies :class:`~repro.service.cache.SharedTierClient`.  The connection
    is lazy and every operation is best-effort: a transport error closes the
    socket, marks the tier down for ``retry_seconds`` (so a dead owner
    process costs one failed syscall per window, not one per request), and
    reports a miss / no-op — the layered local LRU keeps serving.
    """

    def __init__(self, address, *, timeout: float = 2.0, retry_seconds: float = 1.0):
        self.address = address
        self.timeout = timeout
        self.retry_seconds = retry_seconds
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        self._down_until = 0.0
        self._ops = 0
        self._errors = 0
        self._skipped = 0

    @property
    def available(self) -> bool:
        """Whether the tier answered more recently than its last failure."""
        return time.monotonic() >= self._down_until

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, payload: bytes) -> bytes | None:
        """One framed round trip; None when the tier is down/unreachable.

        Inside a traced request the op travels in a ``_OP_TRACED`` envelope:
        the client opens a ``cache.shared.<op>`` span around the round trip
        and grafts the server-measured duration under it, so a trace shows
        both the worker-side wait and the owner-process work.
        """
        trace_id = current_trace_id()
        if trace_id is None:
            return self._round_trip(payload)
        encoded = trace_id.encode("ascii", "replace")[:255]
        op_name = _OP_NAMES.get(payload[0], "op") if payload else "op"
        with trace_span(f"cache.shared.{op_name}"):
            reply = self._round_trip(
                bytes([_OP_TRACED, len(encoded)]) + encoded + payload
            )
            if (
                reply is not None
                and reply.startswith(_REPLY_TRACED)
                and len(reply) >= 9
            ):
                (seconds,) = struct.unpack_from(">d", reply, 1)
                add_span(
                    f"cache.server.{op_name}", seconds, process="cache-server"
                )
                reply = reply[9:]
            return reply

    def _round_trip(self, payload: bytes) -> bytes | None:
        with self._lock:
            if time.monotonic() < self._down_until:
                self._skipped += 1
                return None
            try:
                if self._sock is None:
                    self._sock = _connect(self.address, self.timeout)
                _send_frame(self._sock, payload)
                reply = _recv_frame(self._sock)
                self._ops += 1
                return reply
            except (OSError, ConnectionError, struct.error):
                self._errors += 1
                self._down_until = time.monotonic() + self.retry_seconds
                if self._sock is not None:
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                    self._sock = None
                return None

    # ------------------------------------------------------------------ #
    # SharedTierClient API
    # ------------------------------------------------------------------ #
    def get(self, key: bytes) -> bytes | None:
        reply = self._request(bytes([_OP_GET]) + key)
        if reply is None or not reply.startswith(_REPLY_HIT):
            return None
        return reply[1:]

    def put(self, key: bytes, tag: bytes, value: bytes) -> bool:
        body = (
            bytes([_OP_PUT])
            + struct.pack(">I", len(key)) + key
            + struct.pack(">I", len(tag)) + tag
            + value
        )
        if len(body) + 4 > MAX_FRAME_BYTES:
            return False
        reply = self._request(body)
        return reply is not None and reply.startswith(_REPLY_OK)

    def exists(self, key: bytes) -> bool:
        reply = self._request(bytes([_OP_EXISTS]) + key)
        return reply is not None and reply.startswith(_REPLY_HIT)

    def invalidate(self, tag: bytes) -> int:
        reply = self._request(bytes([_OP_INVALIDATE]) + tag)
        if reply is None or not reply.startswith(_REPLY_OK) or len(reply) < 5:
            return 0
        return struct.unpack(">I", reply[1:5])[0]

    def clear(self) -> bool:
        reply = self._request(bytes([_OP_CLEAR]))
        return reply is not None and reply.startswith(_REPLY_OK)

    def ping(self) -> bool:
        reply = self._request(bytes([_OP_PING]))
        return reply is not None and reply.startswith(_REPLY_OK)

    def server_stats(self) -> dict | None:
        """The owner process's tier-wide counters, if it is reachable."""
        reply = self._request(bytes([_OP_STATS]))
        if reply is None or not reply.startswith(_REPLY_OK):
            return None
        try:
            return json.loads(reply[1:].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None

    def stats(self) -> dict:
        """This client's transport counters."""
        with self._lock:
            return {
                "ops": self._ops,
                "errors": self._errors,
                "skipped_while_down": self._skipped,
                "available": time.monotonic() >= self._down_until,
            }

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None


# ---------------------------------------------------------------------- #
# The ops-coherence channel
# ---------------------------------------------------------------------- #
class OpsBroadcastServer:
    """Supervisor-owned fan-out bus for ops actions (promote/rollback).

    The kernel load-balances HTTP connections across workers, so a
    ``POST /v1/models/promote`` lands on *one* worker — without coherence the
    other workers keep serving the old version.  Each worker holds one
    long-lived connection to this server (same length-prefixed framing as
    the cache tier, JSON payloads); an op frame published by any worker is
    re-broadcast to every **other** connection, so the publisher never
    receives its own op back and each op is applied exactly once per worker.

    Args:
        address: Unix-socket path (or TCP ``(host, port)``) to listen on.
    """

    def __init__(self, address):
        self.address = address
        self._connections: dict[socket.socket, object] = {}
        self._conn_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closed = False
        self._published = 0
        self._delivered = 0
        self._delivery_errors = 0

    def start(self) -> "OpsBroadcastServer":
        """Bind the socket and relay frames on background threads."""
        if self._closed:
            raise RuntimeError("ops broadcast server is closed")
        if self._listener is not None:
            return self
        self._listener = _make_server_socket(self.address)
        if not isinstance(self.address, str):
            self.address = self._listener.getsockname()  # resolve port 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ops-bus-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, sever live connections, release the socket."""
        if self._closed:
            return
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if isinstance(self.address, str):
            try:
                os.unlink(self.address)
            except OSError:
                pass

    def __enter__(self) -> "OpsBroadcastServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._conn_lock:
                if self._closed:
                    conn.close()
                    return
                self._connections[conn] = None
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="ops-bus-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                frame = _recv_frame(conn)
                try:
                    message = json.loads(frame.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    continue  # a garbled frame is dropped, not fatal
                if isinstance(message, dict) and "hello" in message:
                    with self._conn_lock:
                        if conn in self._connections:
                            self._connections[conn] = message["hello"]
                    continue
                self._broadcast(conn, frame)
        except (ConnectionError, OSError, struct.error):
            pass  # peer went away (worker exit, crash, close())
        finally:
            with self._conn_lock:
                self._connections.pop(conn, None)
            try:
                conn.close()
            except OSError:
                pass

    def _broadcast(self, origin: socket.socket, frame: bytes) -> None:
        with self._conn_lock:
            self._published += 1
            peers = [conn for conn in self._connections if conn is not origin]
        for peer in peers:
            try:
                _send_frame(peer, frame)
                with self._conn_lock:
                    self._delivered += 1
            except (OSError, ConnectionError):
                # The reader loop owns teardown; it sees the broken socket.
                with self._conn_lock:
                    self._delivery_errors += 1

    def stats(self) -> dict:
        """Bus counters plus the currently connected worker ids."""
        with self._conn_lock:
            return {
                "connections": len(self._connections),
                "workers": sorted(
                    w for w in self._connections.values() if w is not None
                ),
                "published": self._published,
                "delivered": self._delivered,
                "delivery_errors": self._delivery_errors,
            }


class OpsChannelClient:
    """One worker's connection to the ops bus.

    Satisfies the gateway's ``ops_channel`` duck type (``publish(dict)``).
    A background listener thread delivers broadcasts from sibling workers to
    ``on_op`` (the gateway's ``apply_ops_message``).  Both directions are
    best-effort: a dead bus costs dropped coherence messages, never a failed
    foreground request.

    Args:
        address: The bus address (see :class:`OpsBroadcastServer`).
        worker_id: Announced to the bus in the hello frame (for stats).
        on_op: Callback invoked with each decoded broadcast dict.
        timeout: Connect/send timeout.
    """

    def __init__(self, address, worker_id: int, on_op, *, timeout: float = 2.0):
        self.address = address
        self.worker_id = worker_id
        self.on_op = on_op
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._listener: threading.Thread | None = None
        self._closed = False
        self._published = 0
        self._received = 0
        self._errors = 0

    def start(self) -> "OpsChannelClient":
        """Connect, announce, and start the listener thread."""
        if self._closed:
            raise RuntimeError("ops channel client is closed")
        if self._sock is not None:
            return self
        sock = _connect(self.address, self.timeout)
        # The listener blocks in recv indefinitely; only sends are bounded.
        sock.settimeout(None)
        _send_frame(sock, json.dumps({"hello": self.worker_id}).encode("utf-8"))
        self._sock = sock
        self._listener = threading.Thread(
            target=self._listen, name=f"ops-bus-listen-{self.worker_id}", daemon=True
        )
        self._listener.start()
        return self

    def publish(self, message: dict) -> bool:
        """Send one op frame to the bus (best-effort; False on failure)."""
        try:
            frame = json.dumps(message).encode("utf-8")
        except (TypeError, ValueError):
            return False
        with self._send_lock:
            if self._sock is None:
                return False
            try:
                self._sock.sendall(struct.pack(">I", len(frame)) + frame)
                self._published += 1
                return True
            except (OSError, ConnectionError):
                self._errors += 1
                return False

    def _listen(self) -> None:
        sock = self._sock
        try:
            while True:
                frame = _recv_frame(sock)
                try:
                    message = json.loads(frame.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    continue
                self._received += 1
                try:
                    self.on_op(message)
                except Exception:  # noqa: BLE001 - the listener must survive
                    pass
        except (ConnectionError, OSError, struct.error):
            pass  # bus went away; coherence degrades, serving continues

    def stats(self) -> dict:
        """This client's transport counters."""
        with self._send_lock:
            return {
                "published": self._published,
                "received": self._received,
                "errors": self._errors,
                "connected": self._sock is not None,
            }

    def close(self) -> None:
        self._closed = True
        with self._send_lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None
        if self._listener is not None:
            self._listener.join(timeout=1.0)


# ---------------------------------------------------------------------- #
# The fleet telemetry sink
# ---------------------------------------------------------------------- #
class TelemetrySnapshotServer:
    """Supervisor-owned sink for worker metrics snapshots.

    The sharded workers share one HTTP port the kernel load-balances, so the
    supervisor cannot scrape an *individual* worker over HTTP — each worker
    instead pushes its :meth:`PlanningServer.telemetry_snapshot` here
    (length-prefixed JSON frames ``{"worker_id": ..., "snapshot": ...}`` with
    an optional ``"profile"`` carrying the worker's sampling profile).  The
    sink keeps the latest snapshot and profile per worker slot; the
    supervisor's fleet ``/metrics`` merges snapshots with
    :func:`repro.telemetry.metrics.merge_snapshots` and its ``/v1/profile``
    merges profiles with :func:`repro.telemetry.profiling.merge_profiles`.
    """

    def __init__(self, address):
        self.address = address
        self._lock = threading.Lock()
        self._latest: dict[int, dict] = {}
        self._profiles: dict[int, dict] = {}
        self._received = 0
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._closed = False

    def start(self) -> "TelemetrySnapshotServer":
        if self._closed:
            raise RuntimeError("telemetry sink is closed")
        if self._listener is not None:
            return self
        self._listener = _make_server_socket(self.address)
        if not isinstance(self.address, str):
            self.address = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="telemetry-sink-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if isinstance(self.address, str):
            try:
                os.unlink(self.address)
            except OSError:
                pass

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with self._conn_lock:
                if self._closed:
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="telemetry-sink-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                frame = _recv_frame(conn)
                try:
                    message = json.loads(frame.decode("utf-8"))
                    worker_id = message["worker_id"]
                    snapshot = message["snapshot"]
                    if not isinstance(worker_id, int) or not isinstance(
                        snapshot, dict
                    ):
                        raise ValueError("malformed snapshot frame")
                except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                    _send_frame(conn, _REPLY_ERROR + b"malformed snapshot")
                    continue
                profile = message.get("profile")
                with self._lock:
                    self._latest[worker_id] = snapshot
                    if isinstance(profile, dict):
                        self._profiles[worker_id] = profile
                    self._received += 1
                _send_frame(conn, _REPLY_OK)
        except (ConnectionError, OSError, struct.error):
            pass
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def snapshots(self) -> "list[dict]":
        """The latest snapshot from every worker that has pushed one."""
        with self._lock:
            return [self._latest[wid] for wid in sorted(self._latest)]

    def worker_ids(self) -> "list[int]":
        with self._lock:
            return sorted(self._latest)

    def profiles(self) -> "list[dict]":
        """The latest sampling profile from every worker that pushed one."""
        with self._lock:
            return [self._profiles[wid] for wid in sorted(self._profiles)]

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers_reporting": len(self._latest),
                "snapshots_received": self._received,
            }


class TelemetryPushClient:
    """Worker-side pusher: ships registry snapshots to the supervisor sink.

    A background thread pushes every ``interval_seconds`` and once more on
    close (so short-lived workers still land their final counters).  Pushes
    are best-effort — a dead sink costs one failed syscall per tick, never a
    failed request.
    """

    def __init__(
        self,
        address,
        worker_id: int,
        snapshot_fn: "Callable[[], dict]",
        *,
        profile_fn: "Callable[[], dict] | None" = None,
        interval_seconds: float = 0.25,
        timeout: float = 2.0,
    ):
        self.address = address
        self.worker_id = worker_id
        self.snapshot_fn = snapshot_fn
        self.profile_fn = profile_fn
        self.interval_seconds = interval_seconds
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._pushed = 0
        self._errors = 0

    def start(self) -> "TelemetryPushClient":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-push", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.push()
        self.push()  # final flush on shutdown

    def push(self) -> bool:
        """One snapshot push (also called directly by tests)."""
        try:
            message = {"worker_id": self.worker_id, "snapshot": self.snapshot_fn()}
            if self.profile_fn is not None:
                try:
                    profile = self.profile_fn()
                except Exception:  # noqa: BLE001 - profiling rides along best-effort
                    profile = None
                if isinstance(profile, dict):
                    message["profile"] = profile
            payload = json.dumps(message).encode("utf-8")
        except Exception:  # noqa: BLE001 - telemetry must not kill the worker
            self._errors += 1
            return False
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = _connect(self.address, self.timeout)
                _send_frame(self._sock, payload)
                reply = _recv_frame(self._sock)
                if not reply.startswith(_REPLY_OK):
                    raise ConnectionError("sink rejected snapshot")
                self._pushed += 1
                return True
            except (OSError, ConnectionError, struct.error):
                self._errors += 1
                if self._sock is not None:
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                    self._sock = None
                return False

    def stats(self) -> dict:
        return {"pushed": self._pushed, "errors": self._errors}

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None


# ---------------------------------------------------------------------- #
# The pre-forked gateway
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerSpec:
    """What a worker factory receives to build its gateway.

    Attributes:
        worker_id: Stable worker slot (0-based; survives respawns).
        host: Address the shared port is bound on.
        port: The concrete shared port (resolved by the supervisor).
        cache_address: Shared cache tier address, or None when disabled.
        ops_address: Ops-coherence bus address, or None when disabled.
        telemetry_address: Supervisor metrics sink address, or None when
            fleet telemetry is disabled.
    """

    worker_id: int
    host: str
    port: int
    cache_address: "str | tuple[str, int] | None" = None
    ops_address: "str | tuple[str, int] | None" = None
    telemetry_address: "str | tuple[str, int] | None" = None


#: Builds one worker's (unstarted) gateway from its spec.  Runs inside the
#: forked worker process; closures over a pre-built stack are fine — fork
#: inherits them without pickling.
WorkerFactory = Callable[[WorkerSpec], "PlanningServer"]


def _sharded_worker_main(
    factory: WorkerFactory,
    spec: WorkerSpec,
    listen_socket: socket.socket | None,
    shutdown_read_fd: int,
    shutdown_write_fd: int,
    ready_read_fd: int,
    ready_write_fd: int,
    drain_grace: float,
    local_cache_capacity: int | None,
    shared_cache_min_planning_seconds: float = 0.0,
) -> None:
    """One gateway worker process: build, serve, drain on shutdown.

    Coordination is deliberately pipe-based, not ``multiprocessing.Event`` /
    ``Queue``: those share cross-process locks, and a worker SIGKILLed while
    holding one (the respawn test does exactly that) would deadlock every
    sibling and the supervisor.  A pipe has no user-space lock to corrupt —
    the kernel closes a dead worker's ends, shutdown is the write end's EOF,
    and sub-``PIPE_BUF`` ready lines are atomic.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the supervisor owns Ctrl-C
    # Drop the inherited ends this worker must not hold: every worker closing
    # its copy of the shutdown write end is what lets the supervisor's close
    # deliver EOF to all of them.
    os.close(shutdown_write_fd)
    os.close(ready_read_fd)
    from repro.telemetry.logging import maybe_configure_from_env, set_log_context

    set_log_context(worker=spec.worker_id, process=f"gateway-worker-{spec.worker_id}")
    maybe_configure_from_env()
    gateway = factory(spec)
    gateway.worker_id = spec.worker_id
    if spec.cache_address is not None and gateway.service.cache is not None:
        local = gateway.service.cache
        if local_cache_capacity is not None:
            local = ServicePlanCache(local_cache_capacity)
        gateway.service.cache = TieredPlanCache(
            local,
            SharedCacheClient(spec.cache_address),
            min_shared_planning_seconds=shared_cache_min_planning_seconds,
        )
    ops_client = None
    if spec.ops_address is not None:
        try:
            ops_client = OpsChannelClient(
                spec.ops_address, spec.worker_id, gateway.apply_ops_message
            ).start()
            gateway.ops_channel = ops_client
        except (OSError, ConnectionError):
            ops_client = None  # coherence degrades; serving continues
    telemetry_client = None
    if spec.telemetry_address is not None:
        telemetry_client = TelemetryPushClient(
            spec.telemetry_address,
            spec.worker_id,
            gateway.telemetry_snapshot,
            profile_fn=getattr(gateway, "profile_snapshot", None),
        ).start()
    gateway.start(reuse_port=listen_socket is None, listen_socket=listen_socket)
    message = json.dumps(
        {"worker_id": spec.worker_id, "pid": os.getpid(), "port": gateway.port}
    )
    os.write(ready_write_fd, (message + "\n").encode("utf-8"))
    try:
        os.read(shutdown_read_fd, 1)  # blocks until EOF (or an explicit byte)
    except OSError:
        pass
    finally:
        # Graceful drain: stop accepting, then give in-flight handler
        # threads a grace window to finish writing before the process exits.
        gateway.close()
        if telemetry_client is not None:
            telemetry_client.close()  # final snapshot push lands post-drain counts
        if ops_client is not None:
            ops_client.close()
        time.sleep(drain_grace)


class ShardedGateway:
    """Pre-forked multi-process gateway over one shared listening port.

    Args:
        worker_factory: Builds one worker's (unstarted)
            :class:`~repro.server.app.PlanningServer` from a
            :class:`WorkerSpec`.  Each worker process calls it once after the
            fork, so the factory may close over a pre-built stack (workload,
            network, planner) — workers inherit it copy-on-write.
        num_workers: Gateway worker processes to pre-fork.
        host: Bind address (loopback by default).
        port: Shared port (0 → the supervisor picks an ephemeral port and
            every worker binds it).
        shared_cache: Run the cross-process plan-cache tier (the supervisor
            owns it; workers layer it under their local LRU as an L2).
        shared_cache_capacity: Entry capacity of the shared tier.
        shared_cache_min_planning_seconds: Admission floor for the shared
            tier: plans that took less search time than this stay in the
            worker's local L1 only (and the tier server skips any that slip
            through).  0 admits everything.
        ops_channel: Run the ops-coherence bus: a promote/rollback landing
            on any worker is re-broadcast so every worker applies it.
        telemetry: Run the fleet telemetry tier: workers push their metrics
            snapshots to a supervisor sink, and the supervisor serves the
            merged fleet view on its own ``/metrics`` port (see
            :attr:`metrics_port`).
        local_cache_capacity: When set, each worker's L1 is shrunk to this
            many entries (the tier holds the long tail); None keeps the
            factory-built service's own cache as the L1.
        max_respawns: Crashed workers the supervisor may replace (pool-wide
            budget, the ``ProcessPoolBackend`` idiom; 0 disables respawn).
        health_interval_seconds: Supervisor poll interval for worker
            liveness and the ``/healthz`` probe.
        reuse_port: Force the socket strategy: True → per-worker
            ``SO_REUSEPORT`` sockets, False → one supervisor-bound socket
            inherited by the forked workers, None → auto (``SO_REUSEPORT``
            when the platform has it).
        drain_grace_seconds: In-flight grace window each worker waits after
            it stops accepting during shutdown.
        ready_timeout_seconds: How long :meth:`start` waits for every worker
            to report its socket bound and serving.
    """

    def __init__(
        self,
        worker_factory: WorkerFactory,
        *,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        shared_cache: bool = True,
        shared_cache_capacity: int = 8192,
        shared_cache_min_planning_seconds: float = 0.0,
        ops_channel: bool = True,
        telemetry: bool = True,
        local_cache_capacity: int | None = None,
        max_respawns: int = 2,
        health_interval_seconds: float = 0.5,
        reuse_port: bool | None = None,
        drain_grace_seconds: float = 0.25,
        ready_timeout_seconds: float = 60.0,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self.worker_factory = worker_factory
        self.num_workers = num_workers
        self.max_respawns = max_respawns
        self.health_interval_seconds = health_interval_seconds
        self.drain_grace_seconds = drain_grace_seconds
        self.ready_timeout_seconds = ready_timeout_seconds
        self._host = host
        self._requested_port = port
        self._shared_cache = shared_cache
        self._shared_cache_capacity = shared_cache_capacity
        self._shared_cache_min_planning_seconds = shared_cache_min_planning_seconds
        self._ops_channel = ops_channel
        self._telemetry = telemetry
        self._local_cache_capacity = local_cache_capacity
        self._reuse_port_requested = reuse_port

        self.cache_server: PlanCacheServer | None = None
        self.ops_server: OpsBroadcastServer | None = None
        self.telemetry_server: TelemetrySnapshotServer | None = None
        self._telemetry_address = None
        self._metrics_httpd: ThreadingHTTPServer | None = None
        self._metrics_thread: threading.Thread | None = None
        self._tempdir: str | None = None
        self._reserve_socket: socket.socket | None = None
        self._listen_socket: socket.socket | None = None
        self._port: int | None = None
        self._context = None
        # Pipe-based coordination (kill-safe; see _sharded_worker_main):
        # closing _shutdown_w EOFs every worker; workers report readiness as
        # atomic JSON lines on the ready pipe.
        self._shutdown_r: int | None = None
        self._shutdown_w: int | None = None
        self._ready_r: int | None = None
        self._ready_w: int | None = None
        self._ready_buffer = b""
        self._processes: list = []
        self._respawns_used = 0
        self._supervisor: threading.Thread | None = None
        self._supervisor_stop = threading.Event()
        self._state_lock = threading.Lock()
        self._health_failures = 0
        self._healthy_workers: set[int] = set()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ShardedGateway":
        """Bind the shared port, pre-fork the workers, start the supervisor."""
        if self._closed:
            raise RuntimeError("sharded gateway is closed")
        if self._started:
            return self
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "ShardedGateway pre-forks its workers and requires the "
                "'fork' start method"
            ) from error

        self._tempdir = tempfile.mkdtemp(prefix="repro-shard-")
        cache_address = None
        if self._shared_cache:
            if hasattr(socket, "AF_UNIX"):
                cache_address = os.path.join(self._tempdir, "plan-cache.sock")
            else:  # pragma: no cover - non-POSIX platforms
                cache_address = ("127.0.0.1", 0)
            self.cache_server = PlanCacheServer(
                cache_address,
                capacity=self._shared_cache_capacity,
                min_planning_seconds=self._shared_cache_min_planning_seconds,
            ).start()
            cache_address = self.cache_server.address  # resolved TCP port
        ops_address = None
        if self._ops_channel:
            if hasattr(socket, "AF_UNIX"):
                ops_address = os.path.join(self._tempdir, "ops.sock")
            else:  # pragma: no cover - non-POSIX platforms
                ops_address = ("127.0.0.1", 0)
            self.ops_server = OpsBroadcastServer(ops_address).start()
            ops_address = self.ops_server.address  # resolved TCP port
        if self._telemetry:
            if hasattr(socket, "AF_UNIX"):
                telemetry_address = os.path.join(self._tempdir, "telemetry.sock")
            else:  # pragma: no cover - non-POSIX platforms
                telemetry_address = ("127.0.0.1", 0)
            self.telemetry_server = TelemetrySnapshotServer(telemetry_address).start()
            self._telemetry_address = self.telemetry_server.address

        use_reuse_port = self._reuse_port_requested
        if use_reuse_port is None:
            use_reuse_port = hasattr(socket, "SO_REUSEPORT")
        if use_reuse_port:
            # Reserve the port without joining the accept pool: a bound but
            # never-listening socket keeps the port ours across worker
            # respawns, while connections go only to listening workers.
            reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            reserve.bind((self._host, self._requested_port))
            self._reserve_socket = reserve
            self._port = reserve.getsockname()[1]
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._requested_port))
            listener.listen(128)
            self._listen_socket = listener
            self._port = listener.getsockname()[1]
        self._use_reuse_port = use_reuse_port
        self._cache_address = cache_address
        self._ops_address = ops_address

        self._shutdown_r, self._shutdown_w = os.pipe()
        self._ready_r, self._ready_w = os.pipe()
        self._processes = [self._spawn_worker(slot) for slot in range(self.num_workers)]
        self._started = True
        self._await_ready(self.num_workers)
        self._supervisor = threading.Thread(
            target=self._supervise, name="shard-supervisor", daemon=True
        )
        self._supervisor.start()
        if self._telemetry:
            self._start_metrics_listener()
        return self

    def _start_metrics_listener(self) -> None:
        """Serve the fleet-merged ``/metrics`` on a supervisor-owned port.

        The workers share one load-balanced port, so scraping *that* port
        yields whichever worker the kernel picks.  The supervisor's listener
        is the deterministic scrape target: it merges the pushed worker
        snapshots with its own shard/tier gauges.
        """
        shard = self

        class _FleetMetricsHandler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path not in ("/metrics", "/healthz", "/v1/profile"):
                    self.send_error(404)
                    return
                try:
                    if path == "/healthz":
                        body = json.dumps(shard.fleet_health()).encode("utf-8")
                        content_type = "application/json"
                    elif path == "/v1/profile":
                        body = json.dumps(shard.fleet_profile()).encode("utf-8")
                        content_type = "application/json"
                    else:
                        body = shard.fleet_metrics_text().encode("utf-8")
                        content_type = "text/plain; version=0.0.4; charset=utf-8"
                except Exception:  # noqa: BLE001 - scrape must not kill supervision
                    self.send_error(500)
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002 - http.server API
                pass

        httpd = ThreadingHTTPServer((self._host, 0), _FleetMetricsHandler)
        httpd.daemon_threads = True
        self._metrics_httpd = httpd
        self._metrics_thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="shard-metrics",
            daemon=True,
        )
        self._metrics_thread.start()

    def _spawn_worker(self, slot: int):
        spec = WorkerSpec(
            worker_id=slot,
            host=self._host,
            port=self._port,
            cache_address=self._cache_address,
            ops_address=self._ops_address,
            telemetry_address=self._telemetry_address,
        )
        process = self._context.Process(
            target=_sharded_worker_main,
            args=(
                self.worker_factory,
                spec,
                None if self._use_reuse_port else self._listen_socket,
                self._shutdown_r,
                self._shutdown_w,
                self._ready_r,
                self._ready_w,
                self.drain_grace_seconds,
                self._local_cache_capacity,
                self._shared_cache_min_planning_seconds,
            ),
            name=f"repro-gateway-worker-{slot}",
            daemon=True,
        )
        process.start()
        return process

    def _read_ready_messages(self, timeout: float) -> list[dict]:
        """Drain complete ready lines from the pipe (non-blocking at 0)."""
        import select

        try:
            readable, _, _ = select.select([self._ready_r], [], [], timeout)
        except (OSError, ValueError):
            return []
        if not readable:
            return []
        try:
            self._ready_buffer += os.read(self._ready_r, 65536)
        except OSError:
            return []
        messages = []
        while b"\n" in self._ready_buffer:
            line, self._ready_buffer = self._ready_buffer.split(b"\n", 1)
            try:
                messages.append(json.loads(line))
            except ValueError:
                pass
        return messages

    def _await_ready(self, count: int) -> None:
        deadline = time.monotonic() + self.ready_timeout_seconds
        seen = 0
        while seen < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                dead = [
                    (p.name, p.exitcode) for p in self._processes if not p.is_alive()
                ]
                raise RuntimeError(
                    f"only {seen}/{count} gateway workers became ready within "
                    f"{self.ready_timeout_seconds}s (dead: {dead})"
                )
            seen += len(self._read_ready_messages(min(remaining, 0.5)))

    @property
    def port(self) -> int:
        """The shared bound port (after :meth:`start`)."""
        if self._port is None:
            raise RuntimeError("sharded gateway is not started")
        return self._port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the shard."""
        return f"http://{self._host}:{self.port}"

    def close(self) -> None:
        """Drain workers, stop the supervisor, release the port and tier."""
        if self._closed:
            return
        self._closed = True
        self._supervisor_stop.set()
        if self._shutdown_w is not None:
            os.close(self._shutdown_w)  # EOF = shutdown signal to every worker
            self._shutdown_w = None
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
        deadline = time.monotonic() + 5.0 + self.drain_grace_seconds
        for process in self._processes:
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for fd in (self._shutdown_r, self._ready_r, self._ready_w):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._shutdown_r = self._ready_r = self._ready_w = None
        for sock in (self._reserve_socket, self._listen_socket):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        if self._metrics_httpd is not None:
            self._metrics_httpd.shutdown()
            self._metrics_httpd.server_close()
            if self._metrics_thread is not None:
                self._metrics_thread.join(timeout=2.0)
        if self.cache_server is not None:
            self.cache_server.close()
        if self.ops_server is not None:
            self.ops_server.close()
        # Closed after the workers have joined so their final snapshot
        # pushes (post-drain counters) land in the sink first.
        if self.telemetry_server is not None:
            self.telemetry_server.close()
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)

    def __enter__(self) -> "ShardedGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Supervision: liveness, /healthz, respawn
    # ------------------------------------------------------------------ #
    def _supervise(self) -> None:
        while not self._supervisor_stop.wait(self.health_interval_seconds):
            self._read_ready_messages(0)  # drain respawned workers' reports
            self._reap_dead_workers()
            self._probe_health()

    def _reap_dead_workers(self) -> None:
        for slot, process in enumerate(self._processes):
            if process.is_alive() or self._supervisor_stop.is_set():
                continue
            process.join(timeout=0.1)  # reap the corpse; it already exited
            with self._state_lock:
                if self._respawns_used >= self.max_respawns:
                    continue
                self._respawns_used += 1
            self._processes[slot] = self._spawn_worker(slot)

    def _probe_health(self) -> None:
        """One ``/healthz`` exchange against the shared port.

        The kernel picks the answering worker, so a single probe checks "at
        least one worker is serving"; the per-worker ``worker_id`` in the
        body accumulates into :meth:`stats` as workers take turns answering.
        """
        try:
            request = urllib.request.Request(f"{self.base_url}/healthz", method="GET")
            with urllib.request.urlopen(request, timeout=1.0) as response:
                body = json.loads(response.read().decode("utf-8"))
            ok = body.get("status") == "ok"
        except (OSError, urllib.error.URLError, ValueError):
            ok = False
            body = {}
        with self._state_lock:
            if ok:
                self._health_failures = 0
                worker_id = body.get("worker_id")
                if isinstance(worker_id, int):
                    self._healthy_workers.add(worker_id)
            else:
                self._health_failures += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def alive_workers(self) -> int:
        """Worker processes currently running."""
        return sum(int(process.is_alive()) for process in self._processes)

    def worker_pids(self) -> list[int]:
        """PIDs by worker slot (respawns change the pid, not the slot)."""
        return [process.pid for process in self._processes]

    def shared_cache_stats(self) -> dict | None:
        """Tier-wide cache counters (None when the tier is disabled)."""
        return self.cache_server.stats() if self.cache_server is not None else None

    @property
    def metrics_port(self) -> int:
        """Port of the supervisor's fleet ``/metrics`` listener."""
        if self._metrics_httpd is None:
            raise RuntimeError("fleet telemetry is disabled or not started")
        return self._metrics_httpd.server_address[1]

    @property
    def metrics_url(self) -> str:
        """``http://host:port/metrics`` of the fleet scrape target."""
        return f"http://{self._host}:{self.metrics_port}/metrics"

    def _supervisor_metrics_snapshot(self) -> dict:
        """Shard-level gauges plus the tier servers' own counters.

        Workers publish only their *client-side* shared-cache stats — the
        tier server's counters appear once here, not once per worker, so
        the fleet merge never multiplies them by ``num_workers``.
        """
        registry = MetricsRegistry()
        with self._state_lock:
            respawns = self._respawns_used
            health_failures = self._health_failures
        registry.gauge(
            "repro_shard_workers_alive",
            "Gateway worker processes currently running.",
            aggregation="last",
        ).set(self.alive_workers())
        registry.gauge(
            "repro_shard_workers_configured",
            "Gateway worker processes the shard was started with.",
            aggregation="last",
        ).set(self.num_workers)
        registry.counter(
            "repro_shard_respawns_total", "Crashed workers the supervisor replaced."
        ).set_total(respawns)
        registry.gauge(
            "repro_shard_health_failures",
            "Consecutive failed /healthz probes.",
            aggregation="last",
        ).set(health_failures)
        cache_gauges = {"size", "capacity", "versions", "hit_rate", "min_planning_seconds"}
        cache_stats = self.shared_cache_stats()
        if cache_stats is not None:
            for key, value in cache_stats.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    continue
                if key in cache_gauges:
                    registry.gauge(
                        f"repro_shared_cache_{key}",
                        f"Shared plan-cache tier {key}.",
                        aggregation="last",
                    ).set(value)
                else:
                    registry.counter(
                        f"repro_shared_cache_{key}_total",
                        f"Shared plan-cache tier cumulative {key}.",
                    ).set_total(value)
        if self.ops_server is not None:
            for key, value in self.ops_server.stats().items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    continue
                if key == "connections":
                    registry.gauge(
                        "repro_ops_bus_connections",
                        "Workers connected to the ops-coherence bus.",
                        aggregation="last",
                    ).set(value)
                else:
                    registry.counter(
                        f"repro_ops_bus_{key}_total",
                        f"Ops-coherence bus cumulative {key}.",
                    ).set_total(value)
        if self.telemetry_server is not None:
            sink = self.telemetry_server.stats()
            registry.gauge(
                "repro_shard_workers_reporting",
                "Workers with a telemetry snapshot in the sink.",
                aggregation="last",
            ).set(sink["workers_reporting"])
            registry.counter(
                "repro_shard_snapshots_received_total",
                "Worker metrics snapshots received by the supervisor sink.",
            ).set_total(sink["snapshots_received"])
        return registry.snapshot()

    def fleet_metrics_snapshot(self) -> dict:
        """Fleet-merged registry snapshot: every worker plus the supervisor.

        Counters and histograms sum across workers; gauges merge by their
        declared aggregation (see
        :func:`repro.telemetry.metrics.merge_snapshots`).
        """
        snapshots = (
            self.telemetry_server.snapshots() if self.telemetry_server is not None else []
        )
        snapshots.append(self._supervisor_metrics_snapshot())
        return merge_snapshots(snapshots)

    def fleet_metrics_text(self) -> str:
        """The fleet-merged snapshot in Prometheus text exposition format."""
        return render_snapshot(self.fleet_metrics_snapshot())

    def fleet_health(self) -> dict:
        """Fleet-wide health: the *worst* worker's composite score.

        Each worker publishes its composite ``repro_health_score`` gauge with
        ``aggregation="min"``, so the fleet merge already yields the minimum
        across workers — a single degraded worker degrades the shard's
        reported status.  Before any worker has pushed a snapshot the score
        defaults to 1.0 (liveness alone is what :meth:`start` awaited).
        """
        score = 1.0
        try:
            merged = self.fleet_metrics_snapshot()
            for entry in merged.get("metrics", []):
                if entry.get("name") == "repro_health_score":
                    value = entry.get("value")
                    if isinstance(value, (int, float)):
                        score = min(score, float(value))
        except Exception:  # noqa: BLE001 - health must not raise
            pass
        if score >= 0.8:
            status = "ok"
        elif score >= 0.4:
            status = "degraded"
        else:
            status = "unhealthy"
        return {
            "status": status,
            "role": "shard-supervisor",
            "health_score": score,
            "alive_workers": self.alive_workers(),
            "workers_reporting": (
                len(self.telemetry_server.worker_ids())
                if self.telemetry_server is not None
                else 0
            ),
        }

    def fleet_profile(self) -> dict:
        """Fleet-merged sampling profile plus its flamegraph tree."""
        profiles = (
            self.telemetry_server.profiles()
            if self.telemetry_server is not None
            else []
        )
        merged = merge_profiles(profiles)
        return {
            "role": "shard-supervisor",
            "workers_profiled": len(profiles),
            "profile": merged,
            "flamegraph": flamegraph_from_profile(merged),
        }

    def stats(self) -> dict:
        """Supervisor-side view: liveness, respawns, health, tier counters."""
        with self._state_lock:
            health_failures = self._health_failures
            healthy_workers = sorted(self._healthy_workers)
            respawns = self._respawns_used
        return {
            "num_workers": self.num_workers,
            "alive_workers": self.alive_workers(),
            "respawns_used": respawns,
            "max_respawns": self.max_respawns,
            "consecutive_health_failures": health_failures,
            "workers_seen_healthy": healthy_workers,
            "reuse_port": getattr(self, "_use_reuse_port", None),
            "shared_cache": self.shared_cache_stats(),
            "ops_channel": (
                self.ops_server.stats() if self.ops_server is not None else None
            ),
            "telemetry": (
                self.telemetry_server.stats()
                if self.telemetry_server is not None
                else None
            ),
        }
