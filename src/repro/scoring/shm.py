"""Shared-memory slot rings: zero-copy payload transport with crash leases.

The process scoring backend's queue path copies every featurised payload
twice — once into the ``multiprocessing`` pipe, once out of it.
:class:`ShmRingBuffer` removes both copies: submitters pack the
:mod:`~repro.scoring.wire` feature block *in place* into a fixed slot of a
``multiprocessing.shared_memory`` segment, the scorer process decodes it
with ``np.frombuffer`` views straight off the mapping, and predictions
travel back the same way through a result ring.  Only a few-word control
tuple (request id, slot index, byte length) still crosses the queue.

Slots move through a tiny lease state machine::

    FREE --acquire--> WRITING --commit--> READY --begin--> PROCESSING
      ^                  |                   |                  |
      +----release-------+-------------------+------------------+

Every transition has exactly one legal writer (the allocator owns
``WRITING``, the consumer owns ``PROCESSING``), so plain byte stores are
safe without cross-process locks.  The states double as *leases*: when a
scorer process dies mid-batch, the supervisor calls :meth:`reclaim` with
the dead side's states — ``READY``/``PROCESSING`` for its request ring —
and the slots return to ``FREE`` without ever being handed to two owners
at once.  Slots a *live* submitter is still packing (``WRITING``) are
deliberately left alone; their owner releases them itself when it notices
the worker died.

Rings are single-consumer by construction (one ring per scorer process),
which keeps the allocator lock process-local: submitters contend on a
plain ``threading.Lock`` in the parent, the scorer allocates result slots
from its own single thread.
"""

from __future__ import annotations

import struct
import threading
from multiprocessing import shared_memory

#: Segment tag checked on attach (bump on layout changes).
RING_MAGIC = b"SRB1"
_RING_HEADER = struct.Struct("<4sIQ")  # magic, num_slots, slot_bytes
_SLOT_HEADER = struct.Struct("<B7xQ")  # state byte, pad, payload length

#: Slot lease states (one legal writer per transition; see module docstring).
SLOT_FREE = 0
SLOT_WRITING = 1
SLOT_READY = 2
SLOT_PROCESSING = 3


class ShmRingBuffer:
    """A fixed-slot ring over one shared-memory segment.

    Args:
        name: Existing segment to attach to (consumer side).  ``None``
            creates a fresh segment with a kernel-assigned name.
        create: True to create (and own) the segment; the creator is the
            only side that may :meth:`unlink` it.
        num_slots: Payload slots in the ring (creation only).
        slot_bytes: Capacity of each slot; payloads larger than this must
            take the caller's fallback path (creation only).
    """

    def __init__(
        self,
        name: str | None = None,
        *,
        create: bool = False,
        num_slots: int = 8,
        slot_bytes: int = 1 << 20,
    ):
        self._owner = create
        self._closed = False
        self._alloc_lock = threading.Lock()
        self._next_slot = 0
        if create:
            if num_slots < 1:
                raise ValueError("num_slots must be >= 1")
            if slot_bytes < _SLOT_HEADER.size:
                raise ValueError("slot_bytes is too small to hold any payload")
            size = _RING_HEADER.size + num_slots * (_SLOT_HEADER.size + slot_bytes)
            self._shm = shared_memory.SharedMemory(name=name, create=True, size=size)
            self.num_slots = num_slots
            self.slot_bytes = slot_bytes
            _RING_HEADER.pack_into(self._shm.buf, 0, RING_MAGIC, num_slots, slot_bytes)
            for slot in range(num_slots):
                _SLOT_HEADER.pack_into(self._shm.buf, self._slot_offset(slot),
                                       SLOT_FREE, 0)
        else:
            if name is None:
                raise ValueError("attaching requires the segment name")
            # Note: Python 3.11's SharedMemory registers the segment with
            # the resource tracker even when merely *attaching*.  Scorer
            # processes are spawned children sharing the parent's tracker,
            # where the duplicate registration is a set no-op — the parent's
            # unlink() still unregisters exactly once.  (Un-registering here
            # would cancel the *parent's* registration instead.)
            self._shm = shared_memory.SharedMemory(name=name, create=False)
            magic, self.num_slots, self.slot_bytes = _RING_HEADER.unpack_from(
                self._shm.buf, 0
            )
            if magic != RING_MAGIC:
                self._shm.close()
                raise ValueError(f"segment {name!r} is not a {RING_MAGIC!r} ring")

    @property
    def name(self) -> str:
        """The segment name consumers attach with."""
        return self._shm.name

    def _slot_offset(self, slot: int) -> int:
        return _RING_HEADER.size + slot * (_SLOT_HEADER.size + self.slot_bytes)

    def state(self, slot: int) -> int:
        """The lease state byte of ``slot``."""
        return self._shm.buf[self._slot_offset(slot)]

    # ------------------------------------------------------------------ #
    # Lease transitions
    # ------------------------------------------------------------------ #
    def acquire(self) -> int | None:
        """Claim a FREE slot for writing; ``None`` when the ring is full.

        Scans round-robin from a hint so consecutive acquisitions spread
        across the ring (and naturally wrap).  Allocation is serialised by
        a process-local lock — each ring has exactly one allocating
        process, so no cross-process lock is needed.
        """
        with self._alloc_lock:
            for step in range(self.num_slots):
                slot = (self._next_slot + step) % self.num_slots
                offset = self._slot_offset(slot)
                if self._shm.buf[offset] == SLOT_FREE:
                    self._shm.buf[offset] = SLOT_WRITING
                    self._next_slot = (slot + 1) % self.num_slots
                    return slot
        return None

    def commit(self, slot: int, length: int) -> None:
        """Publish ``length`` payload bytes written into ``slot``.

        The length store precedes the READY state store, so a consumer
        that observes READY always reads a complete header.
        """
        if not 0 <= length <= self.slot_bytes:
            raise ValueError(f"payload of {length} bytes exceeds slot capacity")
        offset = self._slot_offset(slot)
        _SLOT_HEADER.pack_into(self._shm.buf, offset, SLOT_WRITING, length)
        self._shm.buf[offset] = SLOT_READY

    def begin(self, slot: int) -> int | None:
        """Take the consumer lease on a READY ``slot``; returns its length.

        Returns ``None`` when the slot is not READY — the lease was
        reclaimed out from under a stale control message.
        """
        offset = self._slot_offset(slot)
        state, length = _SLOT_HEADER.unpack_from(self._shm.buf, offset)
        if state != SLOT_READY:
            return None
        self._shm.buf[offset] = SLOT_PROCESSING
        return length

    def release(self, slot: int) -> None:
        """Return ``slot`` to FREE (any holder, any state)."""
        self._shm.buf[self._slot_offset(slot)] = SLOT_FREE

    def payload_view(self, slot: int) -> memoryview:
        """A zero-copy writable view of ``slot``'s payload bytes."""
        start = self._slot_offset(slot) + _SLOT_HEADER.size
        return self._shm.buf[start : start + self.slot_bytes]

    def reclaim(self, states: tuple[int, ...] = (SLOT_READY, SLOT_PROCESSING)) -> int:
        """Free every slot whose lease is in ``states``; returns the count.

        Called by the pool supervisor after a consumer process dies.  The
        default reclaims only the *dead side's* states: ``WRITING`` slots
        belong to live submitter threads, which release them themselves.
        """
        reclaimed = 0
        for slot in range(self.num_slots):
            offset = self._slot_offset(slot)
            if self._shm.buf[offset] in states:
                self._shm.buf[offset] = SLOT_FREE
                reclaimed += 1
        return reclaimed

    def occupancy(self) -> float:
        """Fraction of slots currently leased (not FREE)."""
        held = sum(
            1
            for slot in range(self.num_slots)
            if self._shm.buf[self._slot_offset(slot)] != SLOT_FREE
        )
        return held / self.num_slots

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side, after every consumer closed)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:
                pass
