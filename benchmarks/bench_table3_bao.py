"""Table 3: Balsa vs Bao speedups over the PostgreSQL-like expert.

Paper: Balsa 2.1x/1.7x (JOB train/test) and 1.3x/1.3x (JOB Slow) vs Bao's
1.6x/1.8x and 1.2x/1.1x — Balsa generally matches or beats Bao because its
action space is the full plan space rather than a small set of hints.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_table3_balsa_vs_bao(benchmark, scale):
    result = run_once(
        benchmark, experiments.run_table3_balsa_vs_bao, scale, workloads=("job",),
        bao_iterations=4,
    )
    print()
    print(
        format_table(
            ["workload", "balsa train", "balsa test", "bao train", "bao test"],
            [
                [
                    r["workload"],
                    r["balsa_train_speedup"],
                    r["balsa_test_speedup"],
                    r["bao_train_speedup"],
                    r["bao_test_speedup"],
                ]
                for r in result["rows"]
            ],
            title="Table 3: Balsa vs Bao (speedup over the expert)",
        )
    )
    assert all(r["bao_train_speedup"] > 0 for r in result["rows"])
