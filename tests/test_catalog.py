"""Tests for schemas and synthetic data generation."""

import numpy as np
import pytest

from repro.catalog.datagen import generate_database, sample_zipf, zipf_probabilities
from repro.catalog.imdb import make_imdb_schema
from repro.catalog.schema import ColumnDef, ColumnKind, ForeignKey, Schema, TableDef
from repro.catalog.tpch import make_tpch_schema


class TestSchema:
    def test_imdb_schema_validates(self):
        schema = make_imdb_schema()
        assert "title" in schema.tables
        assert len(schema.tables) >= 15
        schema.validate()

    def test_tpch_schema_validates(self):
        schema = make_tpch_schema()
        assert set(schema.table_names()) >= {"lineitem", "orders", "customer", "region"}
        schema.validate()

    def test_duplicate_table_rejected(self):
        schema = Schema("s")
        schema.add(TableDef("a", 10))
        with pytest.raises(ValueError):
            schema.add(TableDef("a", 10))

    def test_missing_fk_target_rejected(self):
        schema = Schema("s")
        schema.add(
            TableDef(
                "a",
                10,
                (ColumnDef("b_id", ColumnKind.FOREIGN_KEY),),
                (ForeignKey("b_id", "missing"),),
            )
        )
        with pytest.raises(ValueError):
            schema.validate()

    def test_unknown_table_lookup_raises(self):
        with pytest.raises(KeyError):
            make_imdb_schema().table("nope")

    def test_implicit_primary_key(self):
        table = make_imdb_schema().table("title")
        assert table.column("id").kind is ColumnKind.PRIMARY_KEY
        assert table.column_names()[0] == "id"

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            make_imdb_schema().table("title").column("nope")

    def test_join_columns_direct_fk(self):
        schema = make_imdb_schema()
        pairs = schema.join_columns("movie_companies", "title")
        assert ("movie_id", "id") in pairs

    def test_join_columns_shared_target(self):
        schema = make_imdb_schema()
        pairs = schema.join_columns("movie_companies", "movie_info")
        assert ("movie_id", "movie_id") in pairs

    def test_foreign_key_edges_cover_title(self):
        schema = make_imdb_schema()
        edges = schema.foreign_key_edges()
        assert any(e[2] == "title" for e in edges)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        probabilities = zipf_probabilities(10, 1.2)
        assert probabilities.shape == (10,)
        assert np.isclose(probabilities.sum(), 1.0)

    def test_zero_skew_is_uniform(self):
        probabilities = zipf_probabilities(5, 0.0)
        assert np.allclose(probabilities, 0.2)

    def test_skew_concentrates_mass(self):
        skewed = zipf_probabilities(100, 1.5)
        assert skewed[0] > 10 * skewed[-1]

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)

    def test_sample_zipf_values_from_domain(self):
        rng = np.random.default_rng(0)
        values = np.array([10, 20, 30])
        samples = sample_zipf(rng, values, 100, 1.0)
        assert set(np.unique(samples)) <= {10, 20, 30}


class TestGenerateDatabase:
    def test_deterministic(self):
        schema = make_imdb_schema(fact_rows=200)
        a = generate_database(schema, seed=3)
        b = generate_database(schema, seed=3)
        assert np.array_equal(
            a.table("cast_info").column("movie_id"), b.table("cast_info").column("movie_id")
        )

    def test_different_seeds_differ(self):
        schema = make_imdb_schema(fact_rows=200)
        a = generate_database(schema, seed=3)
        b = generate_database(schema, seed=4)
        assert not np.array_equal(
            a.table("cast_info").column("movie_id"), b.table("cast_info").column("movie_id")
        )

    def test_scale_changes_row_counts(self):
        schema = make_imdb_schema(fact_rows=200)
        small = generate_database(schema, scale=0.5, seed=0)
        large = generate_database(schema, scale=2.0, seed=0)
        assert large.num_rows("title") > small.num_rows("title")

    def test_foreign_keys_reference_existing_rows(self, imdb_database):
        title_rows = imdb_database.num_rows("title")
        movie_ids = imdb_database.table("movie_companies").column("movie_id")
        assert movie_ids.min() >= 0
        assert movie_ids.max() < title_rows

    def test_primary_keys_are_contiguous(self, imdb_database):
        ids = imdb_database.table("title").column("id")
        assert np.array_equal(ids, np.arange(len(ids)))

    def test_null_fraction_produces_sentinels(self):
        schema = make_imdb_schema(fact_rows=500)
        database = generate_database(schema, seed=0)
        person_role = database.table("cast_info").column("person_role_id")
        assert (person_role == -1).mean() > 0.05

    def test_min_rows_floor(self):
        schema = make_imdb_schema(fact_rows=200)
        database = generate_database(schema, scale=0.001, seed=0, min_rows=8)
        assert all(t.num_rows >= 8 for t in database.tables.values())

    def test_table_ratios_roughly_preserved(self, imdb_database):
        assert imdb_database.num_rows("cast_info") > imdb_database.num_rows("title")
        assert imdb_database.num_rows("title") > imdb_database.num_rows("company_type")

    def test_tpch_generation(self, tpch_database):
        assert tpch_database.num_rows("lineitem") > tpch_database.num_rows("orders")
        assert tpch_database.num_rows("region") >= 5
        custkeys = tpch_database.table("orders").column("o_custkey")
        assert custkeys.max() < tpch_database.num_rows("customer")

    def test_describe_mentions_tables(self, imdb_database):
        text = imdb_database.describe()
        assert "title" in text and "cast_info" in text
