"""The traffic-serving planning layer (``PlannerService``).

Turns the single-query :class:`~repro.search.beam.BeamSearchPlanner` into a
service that can sit in front of live query traffic:

- :class:`~repro.service.cache.ServicePlanCache` — a cross-query LRU plan
  cache keyed by ``(query fingerprint, model version)``, so repeated queries
  skip beam search entirely until the model is updated;
- :class:`~repro.service.batching.BatchedScoringBridge` — coalesces
  child-plan scoring requests from concurrent beam searches into larger
  value-network forward passes;
- :class:`~repro.service.service.PlannerService` — the front door: a worker
  pool planning independent queries concurrently, with per-request stats
  aggregated into a :class:`~repro.service.metrics.ServiceMetrics` report.
"""

from repro.service.batching import BatchedScoringBridge, ScoringBridgeStats
from repro.service.cache import CacheStats, ServicePlanCache
from repro.service.metrics import RequestStats, ServiceMetrics
from repro.service.service import PlannerService, ServiceResponse

__all__ = [
    "BatchedScoringBridge",
    "CacheStats",
    "PlannerService",
    "RequestStats",
    "ScoringBridgeStats",
    "ServiceMetrics",
    "ServicePlanCache",
    "ServiceResponse",
]
