"""Ablation study: which of Balsa's components matter (paper §8.3).

Trains four Balsa variants on the same benchmark — the full agent, no
simulation bootstrapping, no timeouts, no exploration — and prints their
learning curves and final performance, mirroring Figures 10-12.

Run with::

    python examples/ablation_study.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import BalsaAgent, BalsaConfig, make_job_benchmark
from repro.evaluation.reporting import format_series, format_table


def main() -> None:
    benchmark = make_job_benchmark(
        fact_rows=700, num_queries=24, num_templates=8, test_size=5,
        size_range=(4, 7), seed=3,
    )
    expert_runtimes = benchmark.expert_runtimes()
    base = BalsaConfig.small(seed=0, num_iterations=10)

    variants = {
        "full balsa": base,
        "no simulation": replace(base, use_simulation=False, simulator="none"),
        "no timeouts": replace(base, use_timeouts=False),
        "no exploration": replace(base, exploration="none"),
        "retrain (not on-policy)": replace(base, on_policy=False),
    }

    curves = {}
    summary_rows = []
    for name, config in variants.items():
        agent = BalsaAgent(benchmark.environment(), config, expert_runtimes=expert_runtimes)
        agent.train()
        history = agent.history
        curves[name] = [m.normalized_runtime for m in history.iterations]
        summary_rows.append([
            name,
            history.iterations[-1].normalized_runtime,
            history.iterations[-1].unique_plans_seen,
            sum(m.num_timeouts for m in history.iterations),
        ])

    print(format_series(curves))
    print()
    print(format_table(
        ["variant", "final normalized runtime", "unique plans", "total timeouts"],
        summary_rows,
        title="Ablation summary (lower normalized runtime is better)",
    ))


if __name__ == "__main__":
    main()
