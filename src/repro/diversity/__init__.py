"""Diversified experiences (paper §6): merge several agents' experience and retrain."""

from repro.diversity.merge import (
    count_unique_plans,
    merge_agent_experiences,
    retrain_from_experience,
)

__all__ = [
    "count_unique_plans",
    "merge_agent_experiences",
    "retrain_from_experience",
]
