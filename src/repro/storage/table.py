"""A single in-memory columnar table."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.index import HashIndex


@dataclass
class Table:
    """A columnar table: a name plus equal-length numpy columns.

    Attributes:
        name: Table name.
        columns: Mapping of column name to 1-D numpy array.  All arrays must
            share the same length.
    """

    name: str
    columns: dict[str, np.ndarray]
    _indexes: dict[str, HashIndex] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        lengths = {len(array) for array in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"table {self.name!r} has ragged columns (lengths {sorted(lengths)})"
            )

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        """Return a column array by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def column_names(self) -> list[str]:
        """All column names."""
        return list(self.columns)

    def has_index(self, column: str) -> bool:
        """Whether a hash index has been built for ``column``."""
        return column in self._indexes

    def index(self, column: str) -> HashIndex:
        """Return (building if necessary) the hash index on ``column``."""
        if column not in self._indexes:
            self._indexes[column] = HashIndex.build(self.column(column))
        return self._indexes[column]

    def build_indexes(self, columns: list[str] | None = None) -> None:
        """Eagerly build hash indexes for the given columns (default: all)."""
        for column in columns if columns is not None else self.column_names():
            self.index(column)

    def select(self, mask: np.ndarray) -> np.ndarray:
        """Return the row positions selected by a boolean mask."""
        return np.flatnonzero(mask)
