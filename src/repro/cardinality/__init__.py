"""Cardinality estimation.

Three estimators are provided:

- :class:`~repro.cardinality.estimator.HistogramEstimator` — the textbook
  PostgreSQL-style estimator (per-column histograms, attribute independence,
  System-R join selectivities) used by both the :math:`C_{out}` simulator and
  the expert optimizers, matching paper §3.3.
- :class:`~repro.cardinality.true_cards.TrueCardinalityEstimator` — exact
  cardinalities obtained by executing subqueries against the engine (cached);
  used for analysis and for the "oracle" ablation.
- :class:`~repro.cardinality.noise.NoisyEstimator` — wraps another estimator
  and divides its estimates by random noise factors, reproducing the
  robustness experiment in §10 (footnote 11).
"""

from repro.cardinality.base import CardinalityEstimator
from repro.cardinality.estimator import HistogramEstimator
from repro.cardinality.true_cards import TrueCardinalityEstimator
from repro.cardinality.noise import NoisyEstimator

__all__ = [
    "CardinalityEstimator",
    "HistogramEstimator",
    "TrueCardinalityEstimator",
    "NoisyEstimator",
]
