"""The experience buffer ``D_real`` with subplan label correction (paper §4.1).

Each execution of a plan contributes one :class:`ExecutionRecord`.  Training
examples are built by subplan augmentation, and every subplan's label is
corrected to the *best latency obtained so far* among all executions (over the
entire buffer) whose plan contains that subplan — the value-iteration flavour
the paper inherits from Neo.  Timed-out executions contribute the large
timeout label instead of their unknown true latency (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.plans.nodes import PlanNode
from repro.sql.query import Query


@dataclass
class ExecutionRecord:
    """One plan execution observed by the agent.

    Attributes:
        query_name: Name of the executed query.
        plan: The executed (complete) plan.
        latency: Observed latency, or the timeout label for timed-out runs.
        timed_out: Whether the execution was cut off by the timeout.
        iteration: Training iteration that produced the record (-1 for
            demonstrations or merged experience).
        agent_id: Identifier of the agent that collected the record (used by
            diversified experiences).
    """

    query_name: str
    plan: PlanNode
    latency: float
    timed_out: bool = False
    iteration: int = -1
    agent_id: int = 0


@dataclass
class TrainingPoint:
    """One value-network training example derived from experience.

    Attributes:
        query: The full query the subplan belongs to.
        plan: The subplan.
        label: The corrected latency label.
    """

    query: Query
    plan: PlanNode
    label: float


class ExperienceBuffer:
    """Stores execution records and derives corrected training data.

    Args:
        query_lookup: Callable resolving a query name to its :class:`Query`
            (normally ``environment.query_by_name``).
    """

    def __init__(self, query_lookup: Callable[[str], Query]):
        self._query_lookup = query_lookup
        self.records: list[ExecutionRecord] = []
        # (query, subplan fingerprint) -> best latency over the whole buffer.
        self._best_subplan_latency: dict[tuple[str, str], float] = {}
        # (query, complete-plan fingerprint) -> number of executions.
        self._visit_counts: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------ #
    # Adding experience
    # ------------------------------------------------------------------ #
    def add(self, record: ExecutionRecord) -> None:
        """Add one execution record and update the correction/visit indexes."""
        self.records.append(record)
        key = (record.query_name, record.plan.fingerprint())
        self._visit_counts[key] = self._visit_counts.get(key, 0) + 1
        for subplan in record.plan.iter_subplans():
            sub_key = (record.query_name, subplan.fingerprint())
            best = self._best_subplan_latency.get(sub_key)
            if best is None or record.latency < best:
                self._best_subplan_latency[sub_key] = record.latency

    def add_execution(
        self,
        query_name: str,
        plan: PlanNode,
        latency: float,
        *,
        timed_out: bool = False,
        iteration: int = -1,
        agent_id: int = 0,
    ) -> ExecutionRecord:
        """Record one execution without building the record by hand.

        The convenience entry point the online-experience loop uses to replay
        gateway observations (simulated-executed cost standing in for
        latency) through the same augmentation/correction machinery the
        agent's own iterations use.  Returns the record it added.
        """
        record = ExecutionRecord(
            query_name=query_name,
            plan=plan,
            latency=float(latency),
            timed_out=timed_out,
            iteration=iteration,
            agent_id=agent_id,
        )
        self.add(record)
        return record

    def extend(self, records: Iterable[ExecutionRecord]) -> None:
        """Add several records."""
        for record in records:
            self.add(record)

    # ------------------------------------------------------------------ #
    # Queries over the buffer
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def visit_count(self, query_name: str, plan: PlanNode) -> int:
        """How many times this exact complete plan has been executed."""
        return self._visit_counts.get((query_name, plan.fingerprint()), 0)

    def has_executed(self, query_name: str, plan: PlanNode) -> bool:
        """Whether the exact complete plan has been executed before."""
        return self.visit_count(query_name, plan) > 0

    def num_unique_plans(self) -> int:
        """Number of distinct (query, complete plan) pairs executed."""
        return len(self._visit_counts)

    def best_latency(self, query_name: str) -> float | None:
        """Best latency observed so far for a query (None if never executed)."""
        best: float | None = None
        for record in self.records:
            if record.query_name == query_name and not record.timed_out:
                if best is None or record.latency < best:
                    best = record.latency
        return best

    def corrected_label(self, query_name: str, subplan: PlanNode) -> float:
        """Best latency over all executions containing ``subplan``."""
        return self._best_subplan_latency[(query_name, subplan.fingerprint())]

    # ------------------------------------------------------------------ #
    # Training data
    # ------------------------------------------------------------------ #
    def training_points(
        self, iteration: int | None = None, agent_id: int | None = None
    ) -> list[TrainingPoint]:
        """Build corrected, augmented training points.

        Args:
            iteration: When given, only records from this iteration are
                expanded (on-policy learning).  Label correction always uses
                the entire buffer.
            agent_id: Optional filter by collecting agent.

        Returns:
            The training points.
        """
        points: list[TrainingPoint] = []
        for record in self.records:
            if iteration is not None and record.iteration != iteration:
                continue
            if agent_id is not None and record.agent_id != agent_id:
                continue
            query = self._query_lookup(record.query_name)
            for subplan in record.plan.iter_subplans():
                label = self._best_subplan_latency[
                    (record.query_name, subplan.fingerprint())
                ]
                points.append(TrainingPoint(query=query, plan=subplan, label=label))
        return points

    # ------------------------------------------------------------------ #
    # Merging (diversified experiences, §6)
    # ------------------------------------------------------------------ #
    def merged_with(self, others: Iterable["ExperienceBuffer"]) -> "ExperienceBuffer":
        """A new buffer containing this buffer's records plus all ``others``."""
        merged = ExperienceBuffer(self._query_lookup)
        merged.extend(self.records)
        for other in others:
            merged.extend(other.records)
        return merged
