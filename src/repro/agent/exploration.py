"""Exploration strategies over beam-search outputs (paper §5 and §8.3.3).

- :class:`CountBasedExploration` — Balsa's safe exploration: among the top-k
  plans returned by beam search (all "probably good"), execute the best plan
  not executed before; fall back to the predicted-best plan when all have been
  seen (Figure 3 of the paper).
- :class:`EpsilonGreedyExploration` — the unsafe baseline: with probability ε
  a random valid plan (à la QuickPick) is executed instead of the predicted
  best.
- :class:`NoExploration` — pure exploitation.
"""

from __future__ import annotations

import abc


from repro.agent.experience import ExperienceBuffer
from repro.optimizer.quickpick import random_plan
from repro.planning.envelope import PlanResult as PlannerResult
from repro.plans.nodes import PlanNode
from repro.sql.query import Query
from repro.utils.rng import new_rng


class ExplorationStrategy(abc.ABC):
    """Chooses which of the planner's candidate plans to execute during training."""

    @abc.abstractmethod
    def choose(
        self, query: Query, planner_result: PlannerResult, experience: ExperienceBuffer
    ) -> PlanNode:
        """Pick the plan to execute for ``query`` this iteration."""


class NoExploration(ExplorationStrategy):
    """Always execute the predicted-best plan."""

    def choose(
        self, query: Query, planner_result: PlannerResult, experience: ExperienceBuffer
    ) -> PlanNode:
        return planner_result.best_plan


class CountBasedExploration(ExplorationStrategy):
    """Balsa's count-based safe exploration (§5)."""

    def choose(
        self, query: Query, planner_result: PlannerResult, experience: ExperienceBuffer
    ) -> PlanNode:
        for plan in planner_result.plans:
            if not experience.has_executed(query.name, plan):
                return plan
        return planner_result.best_plan


class EpsilonGreedyExploration(ExplorationStrategy):
    """ε-greedy exploration with QuickPick-style random plans.

    Args:
        epsilon: Probability of executing a random valid plan.
        seed: RNG seed.
    """

    def __init__(self, epsilon: float = 0.1, seed: int = 0):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = new_rng(seed)

    def choose(
        self, query: Query, planner_result: PlannerResult, experience: ExperienceBuffer
    ) -> PlanNode:
        if self._rng.random() < self.epsilon:
            return random_plan(query, self._rng)
        return planner_result.best_plan


def make_exploration(
    kind: str, epsilon: float = 0.1, seed: int = 0
) -> ExplorationStrategy:
    """Factory from a config string (``"count"`` / ``"epsilon"`` / ``"none"``)."""
    kind = kind.lower()
    if kind == "count":
        return CountBasedExploration()
    if kind == "epsilon":
        return EpsilonGreedyExploration(epsilon=epsilon, seed=seed)
    if kind == "none":
        return NoExploration()
    raise ValueError(f"unknown exploration strategy {kind!r}")
