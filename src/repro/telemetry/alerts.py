"""Alert state machine over SLO burn rates, with protective-action hooks.

:class:`AlertManager` folds :class:`~repro.telemetry.slo.SloStatus` rows
into per-objective alerts with the classic three-state lifecycle:

    inactive → **pending** (breaching, waiting out ``pending_for``)
             → **firing**  (breach sustained; notified + actions invoked)
             → **resolved** (recovered; kept in history)

Notifications are events on the PR-8 lifecycle bus (``kind="alert"``), so
they stream live over ``GET /v1/metrics/stream`` as ``event: alert``
frames and land in ``EventBus.recent()``.  Dedup is by-state: a firing
alert re-notifies only every ``renotify_interval_seconds`` instead of on
every evaluation tick.

Protective actions subscribe via :meth:`AlertManager.add_listener`; the
callback receives the manager after any state transition, reads
``firing()``/``pending()``, and decides (the gateway pauses online-trainer
promotions and tightens the traffic shadower there — this module stays
policy-free).

The manager can run its own evaluation thread (``start()`` with a
``snapshot_fn``) or be driven synchronously (``evaluate(snapshot)``) from
tests and single-shot tools.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.telemetry.events import emit_event
from repro.telemetry.slo import SloEvaluator, SloStatus

__all__ = ["Alert", "AlertManager"]

STATE_PENDING = "pending"
STATE_FIRING = "firing"
STATE_RESOLVED = "resolved"

MAX_RESOLVED_HISTORY = 32


@dataclass
class Alert:
    """One objective's alert record (mutable; owned by the manager)."""

    name: str
    state: str
    since: float
    description: str = ""
    fired_at: float | None = None
    resolved_at: float | None = None
    last_notified: float | None = None
    notify_count: int = 0
    status: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "since": self.since,
            "description": self.description,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "last_notified": self.last_notified,
            "notify_count": self.notify_count,
            "status": dict(self.status),
        }


class AlertManager:
    """Evaluates SLOs on a cadence and runs the alert lifecycle.

    Args:
        evaluator: The burn-rate evaluator to drive.
        pending_for_seconds: How long a breach must persist before the
            alert fires (absorbs single-tick blips).
        renotify_interval_seconds: Minimum spacing between repeated
            ``firing`` notifications for the same alert.
        interval_seconds: Evaluation cadence for the background thread.
        snapshot_fn: Zero-arg callable returning a registry snapshot dict;
            required only when using ``start()``.
        emit: Event publisher (defaults to the process-global bus).
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        evaluator: SloEvaluator | None = None,
        *,
        pending_for_seconds: float = 30.0,
        renotify_interval_seconds: float = 300.0,
        interval_seconds: float = 1.0,
        snapshot_fn: Callable[[], dict] | None = None,
        emit: Callable[..., object] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if pending_for_seconds < 0:
            raise ValueError(
                f"pending_for_seconds must be >= 0, got {pending_for_seconds}"
            )
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.evaluator = evaluator if evaluator is not None else SloEvaluator()
        self.pending_for_seconds = float(pending_for_seconds)
        self.renotify_interval_seconds = float(renotify_interval_seconds)
        self.interval_seconds = float(interval_seconds)
        self.snapshot_fn = snapshot_fn
        self._emit = emit if emit is not None else emit_event
        self._clock = clock
        self._lock = threading.Lock()
        self._active: dict[str, Alert] = {}
        self._resolved: list[Alert] = []
        self._listeners: list[Callable[[AlertManager], None]] = []
        self._evaluations = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- wiring ------------------------------------------------------------

    def add_listener(self, listener: Callable[[AlertManager], None]) -> None:
        """Register a protective-action hook, called (outside the manager
        lock) after every evaluation that changed any alert's state."""
        self._listeners.append(listener)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, snapshot: dict, now: float | None = None) -> list[SloStatus]:
        """Run one evaluation tick against ``snapshot``."""
        if now is None:
            now = self._clock()
        statuses = self.evaluator.observe(snapshot, now)
        changed = False
        with self._lock:
            self._evaluations += 1
            for status in statuses:
                changed |= self._transition_locked(status, now)
        if changed:
            for listener in list(self._listeners):
                try:
                    listener(self)
                except Exception:
                    pass  # a broken action must not stop evaluation
        return statuses

    def _transition_locked(self, status: SloStatus, now: float) -> bool:
        alert = self._active.get(status.name)
        if status.breaching:
            if alert is None:
                alert = Alert(
                    name=status.name,
                    state=STATE_PENDING,
                    since=now,
                    description=status.description,
                    status=status.to_json_dict(),
                )
                self._active[status.name] = alert
                if self.pending_for_seconds == 0:
                    alert.state = STATE_FIRING
                    alert.fired_at = now
                    self._notify_locked(alert, now)
                return True
            alert.status = status.to_json_dict()
            if alert.state == STATE_PENDING:
                if now - alert.since >= self.pending_for_seconds:
                    alert.state = STATE_FIRING
                    alert.fired_at = now
                    self._notify_locked(alert, now)
                    return True
                return False
            # Already firing: dedup, re-notify on the interval only.
            if (
                alert.last_notified is None
                or now - alert.last_notified >= self.renotify_interval_seconds
            ):
                self._notify_locked(alert, now)
            return False
        if alert is None:
            return False
        del self._active[status.name]
        if alert.state == STATE_PENDING:
            # Never fired: a blip the pending window absorbed; no event.
            return True
        alert.state = STATE_RESOLVED
        alert.resolved_at = now
        alert.status = status.to_json_dict()
        self._resolved.append(alert)
        del self._resolved[:-MAX_RESOLVED_HISTORY]
        self._emit(
            "alert",
            name=alert.name,
            state=STATE_RESOLVED,
            description=alert.description,
            fast_burn_rate=status.fast_burn_rate,
            slow_burn_rate=status.slow_burn_rate,
        )
        return True

    def _notify_locked(self, alert: Alert, now: float) -> None:
        alert.last_notified = now
        alert.notify_count += 1
        status = alert.status
        self._emit(
            "alert",
            name=alert.name,
            state=alert.state,
            description=alert.description,
            fast_burn_rate=status.get("fast_burn_rate", 0.0),
            slow_burn_rate=status.get("slow_burn_rate", 0.0),
            burn_threshold=status.get("burn_threshold", 0.0),
            notify_count=alert.notify_count,
        )

    # -- read side ---------------------------------------------------------

    def firing(self) -> list[str]:
        with self._lock:
            return sorted(
                name
                for name, alert in self._active.items()
                if alert.state == STATE_FIRING
            )

    def pending(self) -> list[str]:
        with self._lock:
            return sorted(
                name
                for name, alert in self._active.items()
                if alert.state == STATE_PENDING
            )

    def to_json_dict(self) -> dict:
        """The ``GET /v1/alerts`` body: active alerts, recent resolutions,
        and the objectives being watched."""
        with self._lock:
            active = [
                alert.to_json_dict()
                for _, alert in sorted(self._active.items())
            ]
            resolved = [alert.to_json_dict() for alert in self._resolved[-8:]]
            evaluations = self._evaluations
        return {
            "firing": [a["name"] for a in active if a["state"] == STATE_FIRING],
            "pending": [a["name"] for a in active if a["state"] == STATE_PENDING],
            "active": active,
            "recently_resolved": resolved,
            "evaluations": evaluations,
            "objectives": [
                {
                    "name": o.name,
                    "objective": o.objective,
                    "burn_threshold": o.burn_threshold,
                    "description": o.description,
                }
                for o in self.evaluator.objectives
            ],
            "windows": {
                "fast_seconds": self.evaluator.fast_window_seconds,
                "slow_seconds": self.evaluator.slow_window_seconds,
                "pending_for_seconds": self.pending_for_seconds,
                "renotify_interval_seconds": self.renotify_interval_seconds,
            },
        }

    # -- background thread -------------------------------------------------

    def start(self) -> None:
        """Start the evaluation thread (requires ``snapshot_fn``)."""
        if self.snapshot_fn is None:
            raise ValueError("AlertManager.start() requires snapshot_fn")
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-alertmanager", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def _run(self) -> None:
        assert self.snapshot_fn is not None
        while not self._stop.wait(self.interval_seconds):
            try:
                snapshot = self.snapshot_fn()
            except Exception:
                continue  # the gateway may be mid-shutdown
            self.evaluate(snapshot)
