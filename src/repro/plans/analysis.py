"""Plan-shape and operator-composition analysis.

Figure 18 of the paper tracks the fraction of merge / nested-loop / hash joins
and the fraction of bushy vs. left-deep plans over the course of training.
These helpers compute those statistics for a single plan or a collection of
plans.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanNode, ScanOperator


class PlanShape(str, enum.Enum):
    """Coarse plan-tree shape categories."""

    SINGLE_TABLE = "single_table"
    LEFT_DEEP = "left_deep"
    RIGHT_DEEP = "right_deep"
    BUSHY = "bushy"


def plan_shape(plan: PlanNode) -> PlanShape:
    """Classify a plan tree's shape.

    A plan is *left-deep* when every join's right child is a scan, *right-deep*
    when every join's left child is a scan, and *bushy* otherwise.  A plan with
    fewer than two joins is both left- and right-deep; we report it as
    left-deep by convention (single scans get their own category).
    """
    joins = list(plan.iter_joins())
    if not joins:
        return PlanShape.SINGLE_TABLE
    left_deep = all(isinstance(j.right, ScanNode) for j in joins)
    right_deep = all(isinstance(j.left, ScanNode) for j in joins)
    if left_deep:
        return PlanShape.LEFT_DEEP
    if right_deep:
        return PlanShape.RIGHT_DEEP
    return PlanShape.BUSHY


@dataclass
class OperatorComposition:
    """Aggregate operator / shape statistics over a collection of plans.

    Attributes:
        join_fractions: Fraction of join nodes using each join operator.
        scan_fractions: Fraction of scan nodes using each scan operator.
        shape_fractions: Fraction of plans falling in each shape category.
        num_plans: Number of plans aggregated.
    """

    join_fractions: dict[JoinOperator, float]
    scan_fractions: dict[ScanOperator, float]
    shape_fractions: dict[PlanShape, float]
    num_plans: int


def operator_counts(plan: PlanNode) -> tuple[Counter, Counter]:
    """Count join and scan operators in a single plan."""
    join_counter: Counter = Counter()
    scan_counter: Counter = Counter()
    for node in plan.iter_nodes():
        if isinstance(node, JoinNode):
            join_counter[node.operator] += 1
        elif isinstance(node, ScanNode):
            scan_counter[node.operator] += 1
    return join_counter, scan_counter


def operator_composition(plans: Iterable[PlanNode]) -> OperatorComposition:
    """Aggregate operator and shape fractions over ``plans``."""
    join_counter: Counter = Counter()
    scan_counter: Counter = Counter()
    shape_counter: Counter = Counter()
    num_plans = 0
    for plan in plans:
        num_plans += 1
        joins, scans = operator_counts(plan)
        join_counter.update(joins)
        scan_counter.update(scans)
        shape_counter[plan_shape(plan)] += 1
    total_joins = sum(join_counter.values()) or 1
    total_scans = sum(scan_counter.values()) or 1
    total_plans = num_plans or 1
    return OperatorComposition(
        join_fractions={op: join_counter.get(op, 0) / total_joins for op in JoinOperator},
        scan_fractions={op: scan_counter.get(op, 0) / total_scans for op in ScanOperator},
        shape_fractions={
            shape: shape_counter.get(shape, 0) / total_plans for shape in PlanShape
        },
        num_plans=num_plans,
    )
