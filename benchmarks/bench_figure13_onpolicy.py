"""Figure 13: on-policy learning vs full retraining each iteration.

Paper: on-policy reaches the expert 2.1x faster because each update trains on
a constant-size dataset instead of an ever-growing one; the saved time goes to
exploration.  The shape to check: on-policy's cumulative update time is
smaller than retrain's.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series


def bench_figure13_training_scheme(benchmark, scale):
    result = run_once(benchmark, experiments.run_figure13_training_scheme, scale)
    on_policy = result["curves"]["on_policy"]
    retrain = result["curves"]["retrain"]
    print()
    print("Figure 13: on-policy vs retrain")
    print(
        format_series(
            {
                "on_policy_norm_runtime": on_policy["normalized_runtime"],
                "retrain_norm_runtime": retrain["normalized_runtime"],
                "on_policy_update_seconds": on_policy["update_seconds"],
                "retrain_update_seconds": retrain["update_seconds"],
            }
        )
    )
    assert sum(on_policy["update_seconds"]) <= sum(retrain["update_seconds"]) * 1.5
