"""Per-iteration training metrics recorded by agents.

The evaluation runners derive every learning-efficiency figure of the paper
(Figures 7, 8, 10–13, 15, 17, 18) from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plans.analysis import OperatorComposition


@dataclass
class IterationMetrics:
    """Metrics of one real-execution training iteration.

    Attributes:
        iteration: Iteration index (0-based).
        train_runtime: Sum of the latencies of the plans executed this
            iteration (timed-out plans contribute the timeout budget).
        best_known_runtime: Workload runtime using the best plan found so far
            for every training query.
        normalized_runtime: ``train_runtime`` divided by the expert's workload
            runtime (when an expert reference is available).
        elapsed_seconds: Cumulative simulated wall-clock time (pipelined
            planning + cluster execution + model updates) since real-execution
            training started.
        unique_plans_seen: Cumulative number of distinct (query, plan) pairs
            executed.
        num_timeouts: Executions cut off by the timeout this iteration.
        planning_seconds: Total planning time this iteration.
        update_seconds: Value-network update time this iteration.
        timeout_budget: The timeout applied this iteration (None = unlimited).
        test_runtime: Test-set workload runtime (only on evaluation iterations).
        test_normalized_runtime: Test runtime normalised by the expert.
        composition: Operator/shape composition of this iteration's plans.
    """

    iteration: int
    train_runtime: float
    best_known_runtime: float
    normalized_runtime: float | None
    elapsed_seconds: float
    unique_plans_seen: int
    num_timeouts: int
    planning_seconds: float
    update_seconds: float
    timeout_budget: float | None = None
    test_runtime: float | None = None
    test_normalized_runtime: float | None = None
    composition: OperatorComposition | None = None


@dataclass
class TrainingHistory:
    """Full history of one agent training run.

    Attributes:
        iterations: Per-iteration metrics, in order.
        sim_dataset_size: Size of the simulation dataset (0 when simulation is
            disabled).
        sim_collection_seconds: Simulation data-collection time.
        sim_train_seconds: V_sim training time.
    """

    iterations: list[IterationMetrics] = field(default_factory=list)
    sim_dataset_size: int = 0
    sim_collection_seconds: float = 0.0
    sim_train_seconds: float = 0.0

    def final_normalized_runtime(self) -> float | None:
        """Normalised train runtime of the last iteration."""
        if not self.iterations:
            return None
        return self.iterations[-1].normalized_runtime

    def elapsed_hours(self) -> list[float]:
        """Cumulative elapsed time per iteration, in hours."""
        return [m.elapsed_seconds / 3600.0 for m in self.iterations]

    def time_to_match_expert(self) -> float | None:
        """Elapsed seconds until the train runtime first matches the expert."""
        for metrics in self.iterations:
            if metrics.normalized_runtime is not None and metrics.normalized_runtime <= 1.0:
                return metrics.elapsed_seconds
        return None
