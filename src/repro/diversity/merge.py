"""Merging experience across agents and retraining ("Balsa-Nx", paper §6).

A value network guides plan search, so each agent tends to experience only the
plans its own network prefers — a single "mode".  Merging the experience
buffers of N independently seeded agents and retraining a fresh agent on the
union (with *no* additional query executions) covers multiple modes and yields
a more robust, better-generalising value network (Figure 16 / Table 1 /
Figure 17b).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.agent.environment import BalsaEnvironment
from repro.agent.experience import ExperienceBuffer
from repro.model.value_network import ValueNetwork


def merge_agent_experiences(agents: Sequence[BalsaAgent]) -> ExperienceBuffer:
    """Merge the experience buffers of several trained agents."""
    if not agents:
        raise ValueError("at least one agent is required")
    first = agents[0].experience
    return first.merged_with(agent.experience for agent in agents[1:])


def count_unique_plans(buffers: Iterable[ExperienceBuffer]) -> int:
    """Number of distinct (query, plan) pairs across several buffers (Table 1)."""
    unique: set[tuple[str, str]] = set()
    for buffer in buffers:
        for record in buffer.records:
            unique.add((record.query_name, record.plan.fingerprint()))
    return len(unique)


def retrain_from_experience(
    environment: BalsaEnvironment,
    experience: ExperienceBuffer,
    config: BalsaConfig | None = None,
    expert_runtimes: dict[str, float] | None = None,
    epochs: int | None = None,
) -> BalsaAgent:
    """Train a fresh agent purely offline on merged experience.

    No queries are executed: the new agent's value network is trained on the
    merged buffer's (augmented, label-corrected) data and can then be used for
    planning or continued training.

    Args:
        environment: Workload environment (shared with the source agents).
        experience: The merged experience buffer.
        config: Configuration for the new agent (defaults to ``BalsaConfig()``).
        expert_runtimes: Optional expert runtimes for metric normalisation.
        epochs: Training epoch budget (defaults to the config's retrain budget).

    Returns:
        The retrained agent, whose ``experience`` is the merged buffer.
    """
    config = config or BalsaConfig()
    agent = BalsaAgent(environment, config, expert_runtimes=expert_runtimes)
    agent.experience = experience
    agent.value_network = ValueNetwork(environment.featurizer, config.network)
    points = experience.training_points()
    if points:
        agent._fit_points(
            agent.value_network,
            points,
            refit_label_transform=True,
            max_epochs=epochs if epochs is not None else config.retrain_epochs,
        )
        agent._label_transform_fitted = True
    return agent
