"""Structured JSON logging shared by gateway, supervisor and scorer processes.

One formatter, one configuration entry point.  Every line is a single JSON
object carrying the timestamp, level, logger, message, the active request's
``trace_id`` (when the log call happens inside a traced request) and the
process context set via :func:`set_log_context` (worker id, process role,
planner).  Extra fields passed as ``logger.info(..., extra={...})`` with a
``repro_fields`` dict are merged in.

Child processes cannot inherit a configured handler across ``spawn``;
``examples/serve_http.py --log-json`` therefore also sets ``REPRO_LOG_JSON=1``
in the environment and scorer/worker bootstrap calls
:func:`maybe_configure_from_env`.

High-QPS protection: :class:`RateLimitFilter` is a token-bucket
``logging.Filter`` that bounds emitted lines per second (WARNING and above
always pass).  Suppressions are counted process-wide;
``GatewayTelemetry`` republishes the count as the
``repro_logs_suppressed_total`` counter on every scrape.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
import time

#: Environment toggle spawned processes check at bootstrap.
ENV_FLAG = "REPRO_LOG_JSON"

_context_lock = threading.Lock()
_context: dict = {}


def set_log_context(**fields) -> None:
    """Merge process-wide fields (worker_id, process role) into every line."""
    with _context_lock:
        for name, value in fields.items():
            if value is None:
                _context.pop(name, None)
            else:
                _context[name] = value


def get_log_context() -> dict:
    with _context_lock:
        return dict(_context)


_suppressed_lock = threading.Lock()
_suppressed_total = 0


def note_suppressed(count: int = 1) -> None:
    """Record ``count`` log lines dropped by a rate limiter."""
    global _suppressed_total
    with _suppressed_lock:
        _suppressed_total += count


def logs_suppressed_total() -> int:
    """Process-wide count of rate-limited (dropped) log lines."""
    with _suppressed_lock:
        return _suppressed_total


class RateLimitFilter(logging.Filter):
    """Token-bucket sampling filter for high-volume handlers.

    Allows bursts of up to ``burst`` records, then sustains
    ``rate_per_second``; records at WARNING and above always pass (an
    incident must never be rate-limited away).  Dropped records increment
    the process-wide suppression counter read by
    :func:`logs_suppressed_total`.
    """

    def __init__(
        self,
        rate_per_second: float = 50.0,
        burst: int = 100,
        *,
        clock=time.monotonic,
    ) -> None:
        super().__init__()
        if rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be positive, got {rate_per_second}"
            )
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate_per_second = float(rate_per_second)
        self.burst = int(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last = clock()
        self._suppressed = 0

    @property
    def suppressed(self) -> int:
        with self._lock:
            return self._suppressed

    def filter(self, record: logging.LogRecord) -> bool:
        if record.levelno >= logging.WARNING:
            return True
        now = self._clock()
        with self._lock:
            elapsed = max(now - self._last, 0.0)
            self._last = now
            self._tokens = min(
                self._tokens + elapsed * self.rate_per_second, float(self.burst)
            )
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self._suppressed += 1
        note_suppressed()
        return False


class JsonLogFormatter(logging.Formatter):
    """Renders one record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        from repro.telemetry.trace import current_trace_id

        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        payload.update(get_log_context())
        fields = getattr(record, "repro_fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload, default=str)
        except (TypeError, ValueError):
            return json.dumps(
                {"ts": time.time(), "level": "error",
                 "message": "unserialisable log record", "logger": record.name}
            )


def configure_json_logging(
    level: int = logging.INFO,
    stream=None,
    logger_name: str = "repro",
    *,
    rate_limit_per_second: float | None = None,
    rate_limit_burst: int | None = None,
) -> logging.Logger:
    """Route the ``repro`` logger tree to JSON lines on ``stream`` (stderr).

    Idempotent: reconfiguring replaces the previously installed JSON handler
    instead of stacking duplicates.  When ``rate_limit_per_second`` is set,
    a :class:`RateLimitFilter` caps sub-WARNING volume on the handler
    (``rate_limit_burst`` defaults to twice the sustained rate).
    """
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_json", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True
    if rate_limit_per_second is not None:
        burst = (
            rate_limit_burst
            if rate_limit_burst is not None
            else max(int(rate_limit_per_second * 2), 1)
        )
        handler.addFilter(RateLimitFilter(rate_limit_per_second, burst))
    logger.addHandler(handler)
    return logger


def maybe_configure_from_env() -> bool:
    """Configure JSON logging when ``REPRO_LOG_JSON=1`` (child bootstrap).

    ``REPRO_LOG_RATE`` (lines/second, float) optionally arms the
    token-bucket filter in the same hop.
    """
    if os.environ.get(ENV_FLAG, "") != "1":
        return False
    rate_raw = os.environ.get("REPRO_LOG_RATE", "")
    rate: float | None = None
    if rate_raw:
        try:
            parsed = float(rate_raw)
        except ValueError:
            parsed = 0.0
        if parsed > 0:
            rate = parsed
    configure_json_logging(rate_limit_per_second=rate)
    return True
