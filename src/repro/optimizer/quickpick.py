"""Random valid-plan sampling (QuickPick-style).

Two consumers:

- the §3 motivation experiment ("randomly initialize 6 agents ... 45x slower"),
  which needs agents that emit random-but-valid plans;
- the ε-greedy exploration ablation (§8.3.3), where random joins are injected
  into beam search.

``QuickPick`` [Waas & Pellenkoft 2000] samples join orders uniformly from the
valid (connected) space; physical operators are sampled uniformly as well.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.planning.envelope import PlanRequest, PlanResult
from repro.plans.builders import all_join_operators, all_scan_operators, scan
from repro.plans.nodes import JoinNode, PlanNode
from repro.sql.query import Query
from repro.utils.rng import new_rng


def random_plan(
    query: Query,
    rng: int | np.random.Generator | None = None,
    bushy: bool = True,
) -> PlanNode:
    """Sample a uniformly random valid plan for ``query``.

    Args:
        query: Query to plan.
        rng: Seed or generator.
        bushy: Allow bushy shapes.  When false, only left-deep plans are
            sampled.

    Returns:
        A complete, valid physical plan.
    """
    generator = new_rng(rng)
    scan_ops = all_scan_operators()
    join_ops = all_join_operators()

    def random_scan(alias: str) -> PlanNode:
        return scan(query, alias, scan_ops[generator.integers(len(scan_ops))])

    if not bushy:
        # Left-deep: grow one plan by repeatedly joining a random connected alias.
        remaining = list(query.aliases)
        start = remaining.pop(generator.integers(len(remaining)))
        current: PlanNode = random_scan(start)
        while remaining:
            connected = [
                a
                for a in remaining
                if query.joins_between(current.leaf_aliases, {a})
            ]
            if not connected:
                raise ValueError(f"query {query.name!r} has a disconnected join graph")
            alias = connected[generator.integers(len(connected))]
            remaining.remove(alias)
            operator = join_ops[generator.integers(len(join_ops))]
            current = JoinNode(current, random_scan(alias), operator)
        return current

    partials: list[PlanNode] = [random_scan(alias) for alias in query.aliases]
    while len(partials) > 1:
        # Collect all joinable (connected) ordered pairs.
        candidates: list[tuple[int, int]] = []
        for i in range(len(partials)):
            for j in range(len(partials)):
                if i == j:
                    continue
                if query.joins_between(
                    partials[i].leaf_aliases, partials[j].leaf_aliases
                ):
                    candidates.append((i, j))
        if not candidates:
            raise ValueError(f"query {query.name!r} has a disconnected join graph")
        i, j = candidates[generator.integers(len(candidates))]
        operator = join_ops[generator.integers(len(join_ops))]
        joined = JoinNode(partials[i], partials[j], operator)
        partials = [p for idx, p in enumerate(partials) if idx not in (i, j)]
        partials.append(joined)
    return partials[0]


class QuickPickOptimizer:
    """An "optimizer" that returns random valid plans.

    Args:
        seed: RNG seed.
        bushy: Whether bushy shapes may be sampled.
    """

    name = "quickpick"

    def __init__(self, seed: int = 0, bushy: bool = True):
        self._rng = new_rng(seed)
        self.bushy = bushy

    def plan(self, request: PlanRequest) -> PlanResult:
        """Sample ``request.k`` random valid plans (the :class:`Planner` entry).

        QuickPick has no cost model, so predictions are ``nan``; results are
        marked non-cacheable so serving layers never freeze the sampler.
        """
        started = time.perf_counter()
        plans = [
            random_plan(request.query, self._rng, bushy=self.bushy)
            for _ in range(request.k)
        ]
        return PlanResult(
            plans=plans,
            predicted_latencies=[float("nan")] * len(plans),
            planning_seconds=time.perf_counter() - started,
            planner_name=self.name,
            cacheable=False,
        )

    def optimize(self, query: Query) -> PlanNode:
        """Deprecated: return one random valid plan for ``query``."""
        warnings.warn(
            "QuickPickOptimizer.optimize() is deprecated; use plan(PlanRequest(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return random_plan(query, self._rng, bushy=self.bushy)
