"""Tests for beam search and simulation bootstrapping."""

import pytest

from repro.costmodel.cout import CoutCostModel
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.plans.validation import validate_plan
from repro.search.beam import BeamSearchPlanner
from repro.search.state import SearchState
from repro.plans.builders import join, scan
from repro.simulation.augment import augment_data_point
from repro.simulation.collect import collect_simulation_data
from repro.simulation.trainer import train_simulation_model


SMALL_CONFIG = ValueNetworkConfig(
    query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8, seed=0
)


@pytest.fixture(scope="module")
def network(featurizer):
    return ValueNetwork(featurizer, SMALL_CONFIG)


class TestSearchState:
    def test_canonical_ordering(self, three_table_query):
        q = three_table_query
        a = SearchState(plans=(scan(q, "t"), scan(q, "mc")))
        b = SearchState(plans=(scan(q, "mc"), scan(q, "t")))
        assert a == b and a.fingerprint == b.fingerprint

    def test_terminal_detection(self, three_table_query):
        q = three_table_query
        root = SearchState(plans=(scan(q, "t"), scan(q, "mc"), scan(q, "cn")))
        assert not root.is_terminal()
        complete = SearchState(
            plans=(join(join(scan(q, "t"), scan(q, "mc")), scan(q, "cn")),)
        )
        assert complete.is_terminal()

    def test_replace_pair(self, three_table_query):
        q = three_table_query
        root = SearchState(plans=(scan(q, "t"), scan(q, "mc"), scan(q, "cn")))
        i = root.plans.index(scan(q, "t"))
        j = root.plans.index(scan(q, "mc"))
        child = root.replace_pair(i, j, join(scan(q, "t"), scan(q, "mc")))
        assert child.num_plans == 2
        assert child.covered_aliases() == root.covered_aliases()


class TestBeamSearch:
    def test_returns_valid_complete_plans(self, network, five_table_query):
        planner = BeamSearchPlanner(beam_size=5, top_k=4, enumerate_scan_operators=False)
        result = planner.search(five_table_query, network)
        assert 1 <= len(result.plans) <= 4
        for plan in result.plans:
            validate_plan(five_table_query, plan)

    def test_plans_sorted_by_predicted_latency(self, network, five_table_query):
        planner = BeamSearchPlanner(beam_size=5, top_k=4, enumerate_scan_operators=False)
        result = planner.search(five_table_query, network)
        assert result.predicted_latencies == sorted(result.predicted_latencies)

    def test_greedy_beam_size_one(self, network, three_table_query):
        planner = BeamSearchPlanner(beam_size=1, top_k=1, enumerate_scan_operators=False)
        result = planner.search(three_table_query, network)
        assert len(result.plans) >= 1
        validate_plan(three_table_query, result.best_plan)

    def test_scan_operator_enumeration_grows_candidates(self, network, three_table_query):
        small = BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)
        large = BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=True)
        plans_without = small.search(three_table_query, network).plans_scored
        plans_with = large.search(three_table_query, network).plans_scored
        assert plans_with > plans_without

    def test_single_table_query(self, network, imdb_database):
        from repro.sql.query import Query, TableRef

        query = Query("single", (TableRef("title", "t"),))
        planner = BeamSearchPlanner(beam_size=2, top_k=1)
        result = planner.search(query, network)
        assert result.best_plan.leaf_aliases == frozenset({"t"})

    def test_planning_time_recorded(self, network, three_table_query):
        planner = BeamSearchPlanner(beam_size=2, top_k=2, enumerate_scan_operators=False)
        result = planner.search(three_table_query, network)
        assert result.planning_seconds > 0
        assert result.states_expanded > 0


class TestAugmentation:
    def test_one_point_per_subplan(self, three_table_query):
        q = three_table_query
        plan = join(join(scan(q, "t"), scan(q, "mc")), scan(q, "cn"))
        points = augment_data_point(q, plan, 42.0)
        assert len(points) == 5
        assert all(cost == 42.0 for _, _, cost in points)
        assert any(p.num_tables == 3 for _, p, _ in points)
        assert sum(1 for _, p, _ in points if p.num_tables == 1) == 3


class TestSimulationCollection:
    def test_collects_and_augments(self, estimator, three_table_query, five_table_query):
        dataset = collect_simulation_data(
            [three_table_query, five_table_query],
            CoutCostModel(estimator),
            max_points_per_query=None,
        )
        assert dataset.queries_collected == 2
        assert len(dataset) > 20
        assert dataset.collection_seconds > 0
        # Subplans inherit the overall candidate's cost: labels are positive.
        assert (dataset.labels() > 0).all()

    def test_skip_large_queries(self, estimator, five_table_query):
        dataset = collect_simulation_data(
            [five_table_query], CoutCostModel(estimator), skip_tables_above=5
        )
        assert dataset.queries_skipped == 1
        assert len(dataset) == 0

    def test_per_query_cap(self, estimator, five_table_query):
        dataset = collect_simulation_data(
            [five_table_query], CoutCostModel(estimator), max_points_per_query=50
        )
        assert len(dataset) == 50

    def test_merge(self, estimator, three_table_query, five_table_query):
        a = collect_simulation_data([three_table_query], CoutCostModel(estimator))
        b = collect_simulation_data([five_table_query], CoutCostModel(estimator))
        merged = a.merge(b)
        assert len(merged) == len(a) + len(b)
        assert merged.queries_collected == 2


class TestSimulationTraining:
    def test_train_simulation_model(self, estimator, featurizer, three_table_query):
        dataset = collect_simulation_data(
            [three_table_query], CoutCostModel(estimator), max_points_per_query=200
        )
        network, stats = train_simulation_model(
            dataset,
            featurizer,
            network_config=SMALL_CONFIG,
            max_epochs=3,
            batch_size=64,
        )
        assert stats.dataset_size == len(dataset)
        assert stats.train_seconds > 0
        prediction = network.predict_one(
            three_table_query,
            join(join(scan(three_table_query, "t"), scan(three_table_query, "mc")), scan(three_table_query, "cn")),
        )
        assert prediction > 0
