"""The minimal :math:`C_{out}` cost model (paper §3.1).

.. math::

    C_{out}(T) = |T|                                  \\text{ if } T \\text{ is a table/selection} \\\\
    C_{out}(T) = |T| + C_{out}(T_1) + C_{out}(T_2)    \\text{ if } T = T_1 \\bowtie T_2

where :math:`|T|` is the *estimated* cardinality from a cardinality estimator.
The model is logical-only: physical scan and join operators are ignored.
"""

from __future__ import annotations

from repro.cardinality.base import CardinalityEstimator
from repro.costmodel.base import CostModel
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.sql.query import Query


class CoutCostModel(CostModel):
    """Sum of estimated result sizes of all operators in the plan.

    Args:
        estimator: Cardinality estimator providing :math:`|T|`.
    """

    is_physical = False

    def __init__(self, estimator: CardinalityEstimator):
        self.estimator = estimator

    def node_cost(self, query: Query, node: PlanNode) -> float:
        if isinstance(node, (ScanNode, JoinNode)):
            return self.estimator.estimate(query, node.leaf_aliases)
        raise TypeError(f"unknown plan node type {type(node)!r}")
