"""Subplan data augmentation (paper §3.2 and §4.1).

Given a data point ``(query=T, plan=T, overall value=C)``, every subplan
``T' ⊆ T`` yields a distinct data point with the *same* overall query and the
same value: ``{(query=T, plan=T', value=C) : ∀ T' ⊆ T}``.  In RL terms, all
states along a trajectory share the trajectory's return because intermediate
rewards are zero.
"""

from __future__ import annotations

from repro.plans.nodes import PlanNode
from repro.sql.query import Query


def augment_data_point(
    query: Query, plan: PlanNode, value: float
) -> list[tuple[Query, PlanNode, float]]:
    """Expand one (query, plan, value) data point into one per subplan.

    Args:
        query: The (possibly restricted) query the plan answers.
        plan: The complete plan for that query.
        value: The overall cost or latency of the complete plan.

    Returns:
        A list of ``(query, subplan, value)`` tuples, one per node of ``plan``
        (the full plan included).
    """
    return [(query, subplan, value) for subplan in plan.iter_subplans()]
