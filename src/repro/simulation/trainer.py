"""Training :math:`V_{sim}` on the collected simulation dataset."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.featurization.featurizer import QueryPlanFeaturizer
from repro.model.trainer import TrainingHistory, ValueNetworkTrainer
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.simulation.collect import SimulationDataset


@dataclass
class SimulationStats:
    """Bookkeeping for Table 2 of the paper.

    Attributes:
        dataset_size: Number of (query, plan, cost) points after augmentation.
        collection_seconds: Time spent collecting the dataset.
        train_seconds: Time spent training :math:`V_{sim}`.
        history: The supervised training history.
    """

    dataset_size: int
    collection_seconds: float
    train_seconds: float
    history: TrainingHistory


def train_simulation_model(
    dataset: SimulationDataset,
    featurizer: QueryPlanFeaturizer,
    network_config: ValueNetworkConfig | None = None,
    learning_rate: float = 1e-3,
    batch_size: int = 256,
    max_epochs: int = 20,
    patience: int = 3,
    seed: int = 0,
) -> tuple[ValueNetwork, SimulationStats]:
    """Train :math:`V_{sim}` on ``dataset``.

    Args:
        dataset: The collected simulation dataset.
        featurizer: Query/plan featuriser.
        network_config: Value-network hyper-parameters (seeded per agent).
        learning_rate: Adam step size.
        batch_size: Minibatch size.
        max_epochs: Epoch budget (early stopping may end sooner).
        patience: Early-stopping patience.
        seed: Seed for shuffling / validation split.

    Returns:
        ``(V_sim, stats)``.
    """
    network = ValueNetwork(featurizer, network_config)
    trainer = ValueNetworkTrainer(
        network,
        learning_rate=learning_rate,
        batch_size=batch_size,
        max_epochs=max_epochs,
        validation_fraction=0.1,
        patience=patience,
        seed=seed,
    )
    examples = [featurizer.featurize(p.query, p.plan) for p in dataset.points]
    labels = [p.cost for p in dataset.points]
    started = time.perf_counter()
    history = trainer.fit(examples, labels)
    train_seconds = time.perf_counter() - started
    stats = SimulationStats(
        dataset_size=len(dataset),
        collection_seconds=dataset.collection_seconds,
        train_seconds=train_seconds,
        history=history,
    )
    return network, stats
