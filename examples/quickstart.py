"""Quickstart: train a small Balsa agent on the JOB-like workload.

Builds the synthetic IMDb-like database, the expert baseline and a Balsa agent,
trains for a handful of real-execution iterations and reports train/test
workload runtimes against the PostgreSQL-like expert.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BalsaAgent, BalsaConfig, make_job_benchmark
from repro.evaluation.metrics import speedup
from repro.planning import PlanRequest


def main() -> None:
    # 1. Build the benchmark: synthetic IMDb-like data, a JOB-like workload
    #    split into train/test, and the expert optimizers.
    benchmark = make_job_benchmark(
        fact_rows=800,          # rows of the central `title` table
        num_queries=32,         # JOB-like queries (113 in the paper)
        num_templates=10,
        test_size=6,
        size_range=(4, 8),
        seed=0,
    )
    print(f"Training queries: {len(benchmark.train_queries)}")
    print(f"Test queries:     {len(benchmark.test_queries)}")

    # 2. The expert baseline: plan every query with the PostgreSQL-like
    #    optimizer and execute the plans on the simulated engine.
    expert_runtimes = benchmark.expert_runtimes()
    expert_train = sum(expert_runtimes[q.name] for q in benchmark.train_queries)
    expert_test = sum(expert_runtimes[q.name] for q in benchmark.test_queries)
    print(f"Expert train workload runtime: {expert_train:.3f}s (simulated)")
    print(f"Expert test workload runtime:  {expert_test:.3f}s (simulated)")

    # 3. Train Balsa: simulation bootstrapping followed by safe real-execution
    #    learning (timeouts + count-based exploration + on-policy updates).
    config = BalsaConfig.small(seed=0, num_iterations=15)
    agent = BalsaAgent(benchmark.environment(), config, expert_runtimes=expert_runtimes)
    agent.train()

    history = agent.history
    print(f"\nSimulation dataset: {history.sim_dataset_size} points "
          f"(collected in {history.sim_collection_seconds:.1f}s, "
          f"trained in {history.sim_train_seconds:.1f}s)")
    for metrics in history.iterations:
        flag = " (matches expert)" if metrics.normalized_runtime and metrics.normalized_runtime <= 1 else ""
        print(f"  iter {metrics.iteration:2d}: normalized runtime "
              f"{metrics.normalized_runtime:.2f}, unique plans {metrics.unique_plans_seen}, "
              f"timeouts {metrics.num_timeouts}{flag}")

    # 4. Final evaluation: plan train and test queries with the learned value
    #    network (no exploration) and compare against the expert.
    train_latencies = {
        name: latency for name, (_, latency) in agent.evaluate(benchmark.train_queries).items()
    }
    test_latencies = {
        name: latency for name, (_, latency) in agent.evaluate(benchmark.test_queries).items()
    }
    print(f"\nBalsa train speedup over expert: {speedup(train_latencies, expert_runtimes):.2f}x")
    print(f"Balsa test  speedup over expert: {speedup(test_latencies, expert_runtimes):.2f}x")

    # 5. Inspect one learned plan through the uniform planning envelope: any
    #    planner (and the agent's serving layer) answers a PlanRequest with a
    #    PlanResult carrying plans, predictions, timings and search stats.
    query = benchmark.test_queries[0]
    result = agent.plan(PlanRequest(query=query, k=3))
    print(f"\nLearned plans for {query.name} "
          f"(planner={result.planner_name!r}, {len(result.plans)} plans, "
          f"{result.planning_seconds * 1e3:.1f}ms, "
          f"{result.states_expanded} states expanded):")
    print(result.best_plan.describe())


if __name__ == "__main__":
    main()
