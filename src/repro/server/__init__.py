"""The serving gateway: HTTP front door, wire codecs, live shadow scoring.

Stdlib-only (``http.server`` + ``json``) — the gateway adds no dependencies
on top of the in-process stack it fronts:

- :mod:`repro.server.wire` — explicit JSON codecs for the planning envelopes
  (:class:`~repro.planning.envelope.PlanRequest`,
  :class:`~repro.planning.envelope.PlanResult`), service responses, metrics
  reports and promotion decisions, with typed
  :class:`~repro.server.wire.WireFormatError` rejection of malformed input;
- :class:`~repro.server.app.PlanningServer` — ``POST /v1/plan`` /
  ``/v1/plan_many`` through any registered planner, ops endpoints
  (``/v1/metrics``, ``/v1/models``, promote/rollback, ``/healthz``), and
  boot-time restore of the persisted serving chain;
- :class:`~repro.server.shadow_traffic.TrafficShadower` — samples live
  ``/v1/plan`` traffic into a bounded ring buffer, shadow-scores the freshly
  promoted version against its predecessor off the request path, and rolls
  the promotion back automatically when the regression bound breaks on real
  requests;
- :mod:`repro.server.sharding` — :class:`~repro.server.sharding.ShardedGateway`
  pre-forks N gateway workers over one shared listening port (``SO_REUSEPORT``
  with an inherited-fd fallback) under a health-checking, respawning
  supervisor, with :class:`~repro.server.sharding.PlanCacheServer` /
  :class:`~repro.server.sharding.SharedCacheClient` providing the
  cross-process plan-cache tier and
  :class:`~repro.server.sharding.OpsBroadcastServer` /
  :class:`~repro.server.sharding.OpsChannelClient` keeping promote/rollback
  coherent across all workers.
"""

from repro.server.app import DEFAULT_PLANNER, PlanningServer
from repro.server.shadow_traffic import ShadowTrafficStats, TrafficShadower
from repro.server.sharding import (
    OpsBroadcastServer,
    OpsChannelClient,
    PlanCacheServer,
    ShardedGateway,
    SharedCacheClient,
    WorkerSpec,
)
from repro.server.wire import (
    WireFormatError,
    plan_from_json_dict,
    plan_request_from_json_dict,
    plan_request_to_json_dict,
    plan_result_from_json_dict,
    plan_result_to_json_dict,
    plan_to_json_dict,
    promotion_decision_from_json_dict,
    promotion_decision_to_json_dict,
    query_from_json_dict,
    query_to_json_dict,
    service_metrics_from_json_dict,
    service_metrics_to_json_dict,
    service_response_to_json_dict,
)

__all__ = [
    "DEFAULT_PLANNER",
    "OpsBroadcastServer",
    "OpsChannelClient",
    "PlanCacheServer",
    "PlanningServer",
    "ShardedGateway",
    "ShadowTrafficStats",
    "SharedCacheClient",
    "TrafficShadower",
    "WireFormatError",
    "WorkerSpec",
    "plan_from_json_dict",
    "plan_request_from_json_dict",
    "plan_request_to_json_dict",
    "plan_result_from_json_dict",
    "plan_result_to_json_dict",
    "plan_to_json_dict",
    "promotion_decision_from_json_dict",
    "promotion_decision_to_json_dict",
    "query_from_json_dict",
    "query_to_json_dict",
    "service_metrics_from_json_dict",
    "service_metrics_to_json_dict",
    "service_response_to_json_dict",
]
