"""Tests for the model lifecycle: registry, background training, shadow gate,
hot swap, cache warming, and the serving-path invariants across swaps."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.costmodel.cout import CoutCostModel
from repro.lifecycle import (
    BackgroundTrainer,
    LifecycleError,
    ModelLifecycle,
    ModelRegistry,
    ModelSnapshot,
    ShadowEvaluator,
)
from repro.model.trainer import ValueNetworkTrainer
from repro.model.value_network import (
    StateDictMismatchError,
    ValueNetwork,
    ValueNetworkConfig,
)
from repro.optimizer.quickpick import random_plan
from repro.planning.adapters import versioned_planner_name
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.utils.rng import derive_seed, new_rng
from repro.workloads.benchmark import make_job_benchmark, make_tpch_benchmark


def small_config(seed: int = 0) -> ValueNetworkConfig:
    return ValueNetworkConfig(
        query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8,
        seed=seed,
    )


def small_network(featurizer, seed: int = 0) -> ValueNetwork:
    return ValueNetwork(featurizer, small_config(seed))


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=300, num_queries=10, num_templates=4, test_size=3,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def queries(bench):
    return list(bench.train_queries)


@pytest.fixture(scope="module")
def cost_model(bench):
    return CoutCostModel(bench.environment().estimator)


@pytest.fixture(scope="module")
def experience(bench, queries, cost_model):
    """Featurised (random plan, cout-cost) experience: dense enough that a
    value network trained on it reliably rank-orders plans by cost."""
    examples, labels = [], []
    for query in queries:
        seen: set[str] = set()
        for index in range(40):
            plan = random_plan(query, new_rng(derive_seed(0, query.name, index)))
            fingerprint = plan.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            examples.append(bench.featurizer.featurize(query, plan))
            labels.append(cost_model.cost(query, plan))
    return examples, labels


@pytest.fixture(scope="module")
def trained_serving(bench, experience) -> ValueNetwork:
    """A network fitted to the cout costs until its ranking is trustworthy.

    Never mutated by tests: candidates are always clones, so the shadow-gate
    margins computed from this network are deterministic per seed.
    """
    network = ValueNetwork(
        bench.featurizer,
        ValueNetworkConfig(
            query_hidden=32, query_embedding=16, tree_channels=(32, 16),
            head_hidden=16, seed=0,
        ),
    )
    examples, labels = experience
    ValueNetworkTrainer(
        network, learning_rate=3e-3, max_epochs=60, validation_fraction=0.0, seed=0
    ).fit(examples, labels)
    return network


def sabotage(network: ValueNetwork) -> ValueNetwork:
    """A clone whose prediction order is inverted (an injected regression).

    Negating the output head makes beam search prefer exactly the plans the
    original model considered worst, so a trained original yields a candidate
    that deterministically regresses on the probe workload.
    """
    bad = network.clone()
    bad.head_fc2.weight.value = -bad.head_fc2.weight.value
    bad.head_fc2.bias.value = -bad.head_fc2.bias.value
    bad.bump_version()
    return bad


# ---------------------------------------------------------------------- #
# state_dict round trips
# ---------------------------------------------------------------------- #
class TestStateDict:
    def test_round_trip_reproduces_predictions(self, bench, queries):
        source = small_network(bench.featurizer, seed=3)
        target = small_network(bench.featurizer, seed=9)
        target.load_state_dict(source.state_dict())
        planner = small_planner()
        query = queries[0]
        plans = planner.search(query, source).plans
        np.testing.assert_allclose(
            source.predict(query, plans), target.predict(query, plans)
        )
        assert target.label_mean == source.label_mean
        assert target.label_std == source.label_std

    def test_load_bumps_version(self, bench):
        network = small_network(bench.featurizer)
        before = network.version_key()
        network.load_state_dict(network.state_dict())
        assert network.version_key() != before

    def test_shape_mismatch_raises_typed_error(self, bench):
        small = small_network(bench.featurizer)
        wide = ValueNetwork(
            bench.featurizer,
            ValueNetworkConfig(
                query_hidden=24, query_embedding=8, tree_channels=(16, 8), head_hidden=8
            ),
        )
        with pytest.raises(StateDictMismatchError, match="shape mismatch"):
            wide.load_state_dict(small.state_dict())

    def test_featurizer_mismatch_raises_typed_error(self, bench):
        network = small_network(bench.featurizer)
        state = network.state_dict()
        state["featurizer_signature"] = ("qpf-v1", "other-schema", (), 1, 2)
        with pytest.raises(StateDictMismatchError, match="featurizer mismatch"):
            network.load_state_dict(state)

    def test_missing_and_unexpected_parameters_raise(self, bench):
        network = small_network(bench.featurizer)
        state = network.state_dict()
        weights = dict(state["weights"])
        removed = sorted(weights)[0]
        del weights[removed]
        weights["bogus.weight"] = np.zeros(3)
        state["weights"] = weights
        with pytest.raises(StateDictMismatchError, match="do not line up"):
            network.load_state_dict(state)

    def test_non_state_dict_rejected(self, bench):
        network = small_network(bench.featurizer)
        with pytest.raises(StateDictMismatchError, match="missing 'weights'"):
            network.load_state_dict({"just": "weights?"})


# ---------------------------------------------------------------------- #
# ModelRegistry
# ---------------------------------------------------------------------- #
class TestModelRegistry:
    def test_register_assigns_monotone_versions(self, bench):
        registry = ModelRegistry()
        first = registry.register(small_network(bench.featurizer), source="a")
        second = registry.register(small_network(bench.featurizer), source="b")
        assert (first.version, second.version) == (1, 2)
        assert registry.versions() == [1, 2]
        assert registry.latest().version == 2

    def test_snapshots_are_immutable_against_later_training(
        self, bench, queries, experience
    ):
        network = small_network(bench.featurizer)
        registry = ModelRegistry()
        snapshot = registry.register(network, source="pre-train")
        planner = small_planner()
        query = queries[0]
        plans = planner.search(query, network).plans
        before = network.predict(query, plans).copy()

        examples, labels = experience
        ValueNetworkTrainer(network, max_epochs=2, validation_fraction=0.0).fit(
            examples, labels
        )
        assert not np.allclose(before, network.predict(query, plans))

        restored = snapshot.restore(bench.featurizer)
        np.testing.assert_allclose(before, restored.predict(query, plans))

    def test_restored_network_has_fresh_identity(self, bench):
        registry = ModelRegistry()
        network = small_network(bench.featurizer)
        snapshot = registry.register(network)
        restored = snapshot.restore(bench.featurizer)
        assert restored.version_key() != network.version_key()

    def test_promote_rollback_chain(self, bench):
        registry = ModelRegistry()
        for _ in range(3):
            registry.register(small_network(bench.featurizer))
        assert registry.serving_version is None
        with pytest.raises(LifecycleError):
            registry.serving()
        registry.promote(1)
        registry.promote(2)
        registry.promote(3)
        assert registry.serving_version == 3
        assert registry.rollback().version == 2
        assert registry.rollback().version == 1
        with pytest.raises(LifecycleError, match="roll back"):
            registry.rollback()

    def test_retention_never_evicts_serving_chain(self, bench):
        registry = ModelRegistry(retention=2)
        registry.register(small_network(bench.featurizer))
        registry.promote(1)
        for _ in range(4):
            registry.register(small_network(bench.featurizer))
        versions = registry.versions()
        assert len(versions) == 2
        assert 1 in versions  # serving survives retention
        assert registry.latest().version == 5
        with pytest.raises(LifecycleError, match="unknown model version"):
            registry.get(2)

    def test_unknown_parent_rejected(self, bench):
        registry = ModelRegistry()
        with pytest.raises(LifecycleError, match="never registered"):
            registry.register(small_network(bench.featurizer), parent_version=7)

    def test_retention_survives_promote_every_round(self, bench):
        """Regression: a promote-every-round workload (the pipelined agent)
        must never protect the whole serving history — that would evict each
        new candidate the moment it registers and crash the next promote."""
        registry = ModelRegistry(retention=4)
        for _ in range(13):
            snapshot = registry.register(small_network(bench.featurizer))
            registry.promote(snapshot.version)  # must never raise
        assert registry.serving_version == 13
        assert len(registry) <= 4
        # The rollback target survives retention; rolling back still works.
        assert registry.rollback().version == 12


# ---------------------------------------------------------------------- #
# BackgroundTrainer
# ---------------------------------------------------------------------- #
class TestBackgroundTrainer:
    def test_fine_tunes_off_the_serving_network(self, bench, queries, experience):
        registry = ModelRegistry()
        serving = small_network(bench.featurizer)
        base_snapshot = registry.register(serving, source="baseline")
        registry.promote(base_snapshot.version)
        serving_version_key = serving.version_key()

        examples, labels = experience
        with BackgroundTrainer(registry, max_epochs=2) as trainer:
            report = trainer.train(
                serving,
                examples,
                labels,
                parent_version=base_snapshot.version,
                refit_label_transform=True,
            )
        # The candidate landed in the registry with lineage...
        assert report.snapshot.version == 2
        assert report.snapshot.parent_version == 1
        assert report.history.epochs_run > 0
        assert report.examples == len(examples)
        # ...and the serving network was never touched.
        assert serving.version_key() == serving_version_key

    def test_submit_is_asynchronous_and_closable(self, bench, experience):
        registry = ModelRegistry()
        serving = small_network(bench.featurizer)
        examples, labels = experience
        trainer = BackgroundTrainer(registry, max_epochs=1)
        future = trainer.submit(serving, examples, labels)
        report = future.result(timeout=60)
        assert report.snapshot.version in registry
        trainer.close()
        with pytest.raises(LifecycleError, match="closed"):
            trainer.submit(serving, examples, labels)


# ---------------------------------------------------------------------- #
# Shadow evaluation
# ---------------------------------------------------------------------- #
class TestShadowGate:
    def test_clean_candidate_passes(self, bench, queries, cost_model, trained_serving):
        serving = trained_serving
        candidate = serving.clone()
        shadow = ShadowEvaluator(
            queries, cost_model.cost, max_regression=1.3, planner=small_planner()
        )
        decision = shadow.evaluate(
            candidate, serving, candidate_version=2, serving_version=1
        )
        assert decision.promoted
        assert decision.reason.startswith("passed")
        assert len(decision.probes) == len(queries)
        # Identical weights choose identical plans: exact parity.
        assert decision.max_regression == pytest.approx(1.0)
        assert decision.total_regression == pytest.approx(1.0)

    def test_injected_regression_is_rejected(
        self, bench, queries, cost_model, trained_serving
    ):
        serving = trained_serving
        candidate = sabotage(serving)
        shadow = ShadowEvaluator(
            queries, cost_model.cost, max_regression=1.3, planner=small_planner()
        )
        decision = shadow.evaluate(
            candidate, serving, candidate_version=2, serving_version=1
        )
        assert not decision.promoted
        assert "regression bound violated" in decision.reason
        assert decision.max_regression > shadow.max_regression or (
            decision.total_regression > shadow.max_total_regression
        )
        worst = decision.worst_probe
        assert worst is not None and worst.candidate_cost > worst.serving_cost
        assert decision.format_report()

    def test_candidates_resolvable_by_version_in_registry(
        self, bench, queries, cost_model
    ):
        serving = small_network(bench.featurizer, seed=0)
        candidate = small_network(bench.featurizer, seed=1)
        shadow = ShadowEvaluator(queries[:2], cost_model.cost, planner=small_planner())
        shadow.evaluate(candidate, serving, candidate_version=9, serving_version=8)
        names = shadow.planner_registry.available()
        assert versioned_planner_name("beam", 9) in names
        assert versioned_planner_name("beam", 8) in names
        resolved = shadow.planner_registry.get("beam@v9")
        assert resolved.name == "beam@v9"

    def test_versioned_entries_bounded_across_evaluations(
        self, bench, queries, cost_model
    ):
        """Regression: repeated evaluations must not accumulate one pinned
        weight copy per round in the planner registry."""
        shadow = ShadowEvaluator(queries[:2], cost_model.cost, planner=small_planner())
        serving = small_network(bench.featurizer, seed=0)
        for version in range(2, 6):
            shadow.evaluate(
                small_network(bench.featurizer, seed=version),
                serving,
                candidate_version=version,
                serving_version=1,
            )
        beam_entries = sorted(
            name for name in shadow.planner_registry.available()
            if name.startswith("beam@")
        )
        assert beam_entries == sorted(
            [versioned_planner_name("beam", 1), versioned_planner_name("beam", 5)]
        )


# ---------------------------------------------------------------------- #
# Hot swap + cache warming through the full manager
# ---------------------------------------------------------------------- #
def make_stack(
    bench, queries, cost_model, network, max_workers=2, scoring_backend=None,
    **shadow_kwargs,
):
    service = PlannerService(
        network, planner=small_planner(), max_workers=max_workers,
        scoring_backend=scoring_backend,
    )
    registry = ModelRegistry()
    shadow_kwargs.setdefault("max_regression", 1.3)
    shadow = ShadowEvaluator(
        queries, cost_model.cost, planner=small_planner(), **shadow_kwargs
    )
    lifecycle = ModelLifecycle(
        service, registry, shadow,
        trainer=BackgroundTrainer(registry, max_epochs=2),
    )
    return service, registry, lifecycle


class TestLifecycleEndToEnd:
    # The hot-swap invariants must hold identically whether scoring runs on
    # the threaded coalescing backend or in scorer processes following
    # published snapshots (promotions propagate by version key; in-flight
    # searches never see mixed-version batches).
    @pytest.mark.parametrize("scoring_backend", ["threaded", "process"])
    def test_swap_under_traffic_with_warm_cache(
        self, bench, queries, cost_model, experience, trained_serving,
        scoring_backend,
    ):
        serving = trained_serving
        service, registry, lifecycle = make_stack(
            bench, queries, cost_model, serving, max_workers=4,
            scoring_backend=scoring_backend,
        )
        examples, labels = experience
        failures: list[BaseException] = []
        responses = []
        stop = threading.Event()

        def traffic():
            while not stop.is_set():
                try:
                    responses.extend(service.plan_many(queries))
                except BaseException as error:  # noqa: BLE001 - recorded for assertion
                    failures.append(error)
                    return

        thread = threading.Thread(target=traffic)
        with service:
            lifecycle.baseline()
            thread.start()
            try:
                # Background fine-tune + shadow gate + hot swap + warming,
                # all while plan_many traffic is in flight.
                decision = lifecycle.advance(examples, labels, refit_label_transform=True)
            finally:
                stop.set()
                thread.join()

            assert decision.promoted, decision.reason
            assert registry.serving_version == decision.candidate_version
            metrics = service.metrics()
            assert metrics.swaps == 1
            # The warmer raced live traffic for the new version's entries;
            # whoever planned them, every probe is warm (asserted below).
            assert metrics.warmed_entries <= len(queries)
            # Zero dropped requests: every response carries plans, no errors.
            assert not failures
            assert all(response.plans for response in responses)

            # Steady-state traffic right after the swap stays on the warm path.
            service.reset_metrics()
            post = service.plan_many(queries)
            hit_rate = sum(r.cache_hit for r in post) / len(post)
            assert hit_rate >= 0.9
            # The post-swap plans come from the promoted candidate.
            candidate = registry.serving().restore(bench.featurizer)
            planner = small_planner()
            for query, response in zip(queries, post):
                expected = planner.search(query, candidate)
                assert response.best_plan.fingerprint() == (
                    expected.best_plan.fingerprint()
                )
        lifecycle.close()

    def test_injected_regression_keeps_version_n_serving(
        self, bench, queries, cost_model, trained_serving
    ):
        serving = trained_serving
        service, registry, lifecycle = make_stack(
            bench, queries, cost_model, serving
        )
        with service:
            lifecycle.baseline()
            before = service.plan_many(queries)
            bad = sabotage(serving)
            snapshot = registry.register(bad, source="sabotaged")
            decision = lifecycle.evaluate_and_apply(snapshot)

            assert not decision.promoted
            assert registry.serving_version == 1  # version N keeps serving
            metrics = service.metrics()
            assert metrics.swaps == 0
            assert metrics.promotions_rejected == 1
            assert registry.decisions()[-1] is decision
            # Traffic still served by version N: repeated queries hit its cache.
            after = service.plan_many(queries)
            assert all(response.cache_hit for response in after)
            for old, new in zip(before, after):
                assert old.best_plan.fingerprint() == new.best_plan.fingerprint()
        lifecycle.close()

    def test_rollback_restores_previous_serving_version(
        self, bench, queries, cost_model, experience, trained_serving
    ):
        serving = trained_serving
        service, registry, lifecycle = make_stack(
            bench, queries, cost_model, serving
        )
        examples, labels = experience
        planner = small_planner()
        expected_v1 = {
            q.name: planner.search(q, serving).best_plan.fingerprint() for q in queries
        }
        with service:
            lifecycle.baseline()
            decision = lifecycle.advance(examples, labels, refit_label_transform=True)
            assert decision.promoted
            assert registry.serving_version == 2

            snapshot = lifecycle.rollback()
            assert snapshot.version == 1
            assert registry.serving_version == 1
            metrics = service.metrics()
            assert metrics.swaps == 2
            # No traffic competed with the warmer here: both swaps warmed
            # the full probe workload.
            assert metrics.warmed_entries == 2 * len(queries)
            # Post-rollback traffic plans exactly like version 1 again (and
            # is already warm, because rollback rewarms the known workload).
            post = service.plan_many(queries)
            assert all(response.cache_hit for response in post)
            for query, response in zip(queries, post):
                assert response.best_plan.fingerprint() == expected_v1[query.name]
        lifecycle.close()

    def test_advance_without_explicit_baseline_auto_registers(
        self, bench, queries, cost_model, experience, trained_serving
    ):
        """A lifecycle used without baseline() must not shadow-score the live
        serving object; it registers an implicit baseline copy instead."""
        service, registry, lifecycle = make_stack(
            bench, queries, cost_model, trained_serving
        )
        examples, labels = experience
        with service:
            decision = lifecycle.advance(examples, labels, refit_label_transform=True)
            assert decision.promoted, decision.reason
            sources = [registry.get(v).source for v in registry.versions()]
            assert "auto-baseline" in sources
            assert registry.serving_version == decision.candidate_version
        lifecycle.close()

    def test_swap_rejects_mismatched_featurizer(self, bench):
        # A different schema (TPC-H vs IMDb) is a genuinely different input
        # space; same-schema benchmarks share a signature and may swap.
        other_bench = make_tpch_benchmark(base_rows=200, queries_per_template=1)
        serving = small_network(bench.featurizer)
        foreign = small_network(other_bench.featurizer)
        assert foreign.featurizer.signature() != serving.featurizer.signature()
        with PlannerService(serving, planner=small_planner(), max_workers=1) as service:
            with pytest.raises(StateDictMismatchError, match="hot-swap"):
                service.swap_network(foreign)


# ---------------------------------------------------------------------- #
# The stale-cache window (regression test with a forced interleaving)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("scoring_backend", ["threaded", "process"])
class TestStaleCacheWindow:
    def test_swap_interleaved_with_inflight_plan(
        self, bench, queries, scoring_backend
    ):
        """A swap landing mid-search must not poison either version's cache.

        The interleaving is forced: the in-flight search triggers the swap
        (and a bump_version on the old network) before it returns, exactly
        the window where a version read at admission and a store at
        completion disagree.  Requests admitted after the swap must plan
        with the new network, and — after rolling back — requests must plan
        with the old network again, never with a cross-version entry.
        """
        net_a = small_network(bench.featurizer, seed=0)
        net_b = small_network(bench.featurizer, seed=5)
        query = queries[0]
        box: dict = {"fired": False}

        class SwapMidSearch(BeamSearchPlanner):
            def search(self, q, network, score_fn=None, top_k=None, deadline=None):
                result = super().search(
                    q, network, score_fn=score_fn, top_k=top_k, deadline=deadline
                )
                if not box["fired"]:
                    box["fired"] = True
                    box["service"].swap_network(net_b)
                    net_a.bump_version()  # interleave a weight-version bump too
                return result

        planner = SwapMidSearch(beam_size=3, top_k=2, enumerate_scan_operators=False)
        reference = small_planner()
        with PlannerService(
            net_a, planner=planner, max_workers=2, scoring_backend=scoring_backend
        ) as service:
            box["service"] = service
            inflight = service.plan(query)  # triggers the swap mid-request
            assert inflight.plans  # the in-flight request was not dropped

            # Admitted after the swap: must miss and plan with net_b.
            post_swap = service.plan(query)
            assert not post_swap.cache_hit
            expected_b = reference.search(query, net_b)
            assert post_swap.best_plan.fingerprint() == (
                expected_b.best_plan.fingerprint()
            )

            # Roll back to net_a: the in-flight result from the swap window
            # must not satisfy this request either (its provenance spans two
            # versions), and planning must reflect net_a's current weights.
            service.swap_network(net_a)
            box["fired"] = True  # keep the hijack from firing again
            post_rollback = service.plan(query)
            assert not post_rollback.cache_hit
            expected_a = reference.search(query, net_a)
            assert post_rollback.best_plan.fingerprint() == (
                expected_a.best_plan.fingerprint()
            )

    def test_entry_scored_by_old_version_never_served_after_swap(
        self, bench, queries, scoring_backend
    ):
        net_a = small_network(bench.featurizer, seed=0)
        net_b = small_network(bench.featurizer, seed=5)
        query = queries[1]
        reference = small_planner()
        with PlannerService(
            net_a, planner=small_planner(), max_workers=1,
            scoring_backend=scoring_backend,
        ) as service:
            first = service.plan(query)
            assert service.plan(query).cache_hit  # warm under version N
            service.swap_network(net_b)
            post = service.plan(query)
            assert not post.cache_hit  # the N entry must not satisfy N+1 traffic
            expected = reference.search(query, net_b)
            assert post.best_plan.fingerprint() == expected.best_plan.fingerprint()
            # ...even when N's plans happen to differ from N+1's.
            if first.best_plan.fingerprint() != expected.best_plan.fingerprint():
                assert post.best_plan.fingerprint() != first.best_plan.fingerprint()


# ---------------------------------------------------------------------- #
# ServiceMetrics under concurrent swap + plan_many
# ---------------------------------------------------------------------- #
class TestMetricsUnderConcurrentSwap:
    def test_counters_monotone_and_conserved(self, bench, queries):
        networks = [small_network(bench.featurizer, seed=s) for s in range(3)]
        with PlannerService(
            networks[0], planner=small_planner(), max_workers=4
        ) as service:
            snapshots = []
            errors: list[BaseException] = []
            done = threading.Event()

            def traffic():
                try:
                    for _ in range(6):
                        service.plan_many(queries)
                finally:
                    done.set()

            def swapper():
                for network in networks[1:]:
                    time.sleep(0.01)
                    service.swap_network(network)
                    service.warm_cache(queries)

            threads = [
                threading.Thread(target=traffic),
                threading.Thread(target=swapper),
            ]
            for thread in threads:
                thread.start()
            while not done.is_set():
                try:
                    snapshots.append(service.metrics())
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)
                    break
                time.sleep(0.002)
            for thread in threads:
                thread.join()
            snapshots.append(service.metrics())

        assert not errors
        monotone_fields = (
            "requests", "cache_hits", "cache_misses", "coalesced_requests",
            "swaps", "warmed_entries", "total_states_expanded",
            "total_plans_scored",
        )
        for earlier, later in zip(snapshots, snapshots[1:]):
            for name in monotone_fields:
                assert getattr(later, name) >= getattr(earlier, name), name
        final = snapshots[-1]
        # No lost updates: every served request is exactly one of hit,
        # fresh search, or coalesced join (no deadlines were used).
        assert final.requests == (
            final.cache_hits + final.cache_misses + final.coalesced_requests
        )
        assert final.swaps == 2
        assert final.warmed_entries > 0


# ---------------------------------------------------------------------- #
# The agent's pipelined background training
# ---------------------------------------------------------------------- #
class TestAgentBackgroundTraining:
    def test_agent_overlap_training_registers_versions(self, bench):
        config = BalsaConfig(
            seed=0, num_iterations=2, beam_size=3, top_k=2,
            enumerate_scan_operators=False, sim_max_points_per_query=120,
            sim_max_epochs=2, update_epochs=1, retrain_epochs=2,
            eval_interval=0, background_training=True,
            network=small_config(),
        )
        agent = BalsaAgent(bench.environment(), config)
        history = agent.train()
        try:
            assert len(history.iterations) == 2
            registry = agent.model_registry
            assert registry is not None
            # Baseline + one fine-tune per iteration, all promoted in order.
            assert registry.serving_version == 3
            assert registry.versions() == [1, 2, 3]
            snapshots = [registry.get(v) for v in registry.versions()]
            assert snapshots[0].source == "simulation-bootstrap"
            assert snapshots[1].parent_version == 1
            assert snapshots[2].parent_version == 2
            # The installed serving model is the last registered snapshot.
            restored = registry.serving().restore(bench.featurizer)
            query = bench.train_queries[0]
            planner = small_planner()
            assert (
                planner.search(query, restored).best_plan.fingerprint()
                == planner.search(query, agent.value_network).best_plan.fingerprint()
            )
        finally:
            agent.close()

    def test_background_and_serial_agents_both_complete(self, bench):
        def run(background: bool) -> int:
            config = BalsaConfig(
                seed=0, num_iterations=1, beam_size=3, top_k=2,
                enumerate_scan_operators=False, use_simulation=False,
                update_epochs=1, retrain_epochs=1, eval_interval=0,
                background_training=background, network=small_config(),
            )
            agent = BalsaAgent(bench.environment(), config)
            agent.train()
            count = len(agent.experience.records)
            agent.close()
            return count

        assert run(False) == run(True)


class TestSnapshotTypes:
    def test_snapshot_fields_and_frozen_weights(self, bench):
        registry = ModelRegistry()
        network = small_network(bench.featurizer)
        snapshot = registry.register(network, source="test", tag="t")
        assert isinstance(snapshot, ModelSnapshot)
        assert snapshot.featurizer_signature == bench.featurizer.signature()
        assert snapshot.network_config == network.config
        weights = snapshot.state["weights"]
        name = next(iter(weights))
        with pytest.raises(ValueError):
            weights[name][0] = 123.0  # read-only snapshot arrays
