"""A synthetic TPC-H schema (8 tables, uniform distributions).

TPC-H data is generated from uniform distributions (paper §8.1), so columns
here use no skew.  Row ratios follow the TPC-H spec
(lineitem : orders : partsupp : part/customer : supplier : nation : region
≈ 6,000,000 : 1,500,000 : 800,000 : 200,000/150,000 : 10,000 : 25 : 5 at SF 1),
scaled down to stay tractable.
"""

from __future__ import annotations

from repro.catalog.schema import ColumnDef, ColumnKind, ForeignKey, Schema, TableDef

_FK = ColumnKind.FOREIGN_KEY
_CAT = ColumnKind.CATEGORICAL
_NUM = ColumnKind.NUMERIC


def make_tpch_schema(base_rows: int = 1500) -> Schema:
    """Build the synthetic TPC-H schema.

    Args:
        base_rows: Row count of ``orders`` at scale 1.0; all other tables keep
            the spec's relative proportions.

    Returns:
        A validated :class:`~repro.catalog.schema.Schema` named ``"tpch"``.
    """
    n = int(base_rows)
    schema = Schema(name="tpch")

    schema.add(TableDef("region", 5, (
        ColumnDef("r_name", _CAT, distinct=5, skew=0.0),
    )))
    schema.add(TableDef("nation", 25, (
        ColumnDef("n_regionkey", _FK, skew=0.0),
        ColumnDef("n_name", _CAT, distinct=25, skew=0.0),
    ), (
        ForeignKey("n_regionkey", "region"),
    )))
    schema.add(TableDef("supplier", max(10, n // 150), (
        ColumnDef("s_nationkey", _FK, skew=0.0),
        ColumnDef("s_acctbal", _NUM, low=-1000, high=10000),
    ), (
        ForeignKey("s_nationkey", "nation"),
    )))
    schema.add(TableDef("customer", n // 10, (
        ColumnDef("c_nationkey", _FK, skew=0.0),
        ColumnDef("c_mktsegment", _CAT, distinct=5, skew=0.0),
        ColumnDef("c_acctbal", _NUM, low=-1000, high=10000),
    ), (
        ForeignKey("c_nationkey", "nation"),
    )))
    schema.add(TableDef("part", n // 8, (
        ColumnDef("p_brand", _CAT, distinct=25, skew=0.0),
        ColumnDef("p_type", _CAT, distinct=150, skew=0.0),
        ColumnDef("p_size", _NUM, low=1, high=50),
        ColumnDef("p_container", _CAT, distinct=40, skew=0.0),
    )))
    schema.add(TableDef("partsupp", n // 2, (
        ColumnDef("ps_partkey", _FK, skew=0.0),
        ColumnDef("ps_suppkey", _FK, skew=0.0),
        ColumnDef("ps_supplycost", _NUM, low=1, high=1000),
    ), (
        ForeignKey("ps_partkey", "part"),
        ForeignKey("ps_suppkey", "supplier"),
    )))
    schema.add(TableDef("orders", n, (
        ColumnDef("o_custkey", _FK, skew=0.0),
        ColumnDef("o_orderstatus", _CAT, distinct=3, skew=0.0),
        ColumnDef("o_orderdate", _NUM, low=0, high=2500),
        ColumnDef("o_orderpriority", _CAT, distinct=5, skew=0.0),
        ColumnDef("o_shippriority", _CAT, distinct=2, skew=0.0),
    ), (
        ForeignKey("o_custkey", "customer"),
    )))
    schema.add(TableDef("lineitem", 4 * n, (
        ColumnDef("l_orderkey", _FK, skew=0.0),
        ColumnDef("l_partkey", _FK, skew=0.0),
        ColumnDef("l_suppkey", _FK, skew=0.0),
        ColumnDef("l_shipdate", _NUM, low=0, high=2500),
        ColumnDef("l_receiptdate", _NUM, low=0, high=2550),
        ColumnDef("l_commitdate", _NUM, low=0, high=2520),
        ColumnDef("l_shipmode", _CAT, distinct=7, skew=0.0),
        ColumnDef("l_shipinstruct", _CAT, distinct=4, skew=0.0),
        ColumnDef("l_quantity", _NUM, low=1, high=50),
        ColumnDef("l_discount", _NUM, low=0, high=10),
        ColumnDef("l_returnflag", _CAT, distinct=3, skew=0.0),
    ), (
        ForeignKey("l_orderkey", "orders"),
        ForeignKey("l_partkey", "part"),
        ForeignKey("l_suppkey", "supplier"),
    )))

    schema.validate()
    return schema
