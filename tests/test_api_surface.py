"""Public-API surface check.

Imports :mod:`repro.api`, asserts every ``__all__`` name resolves, and pins
the surface to a frozen list so accidental drift (a renamed or dropped
re-export) fails CI loudly.  Extending the API is a conscious act: add the
name to ``repro/api.py`` *and* to ``EXPECTED_API`` here.
"""

from __future__ import annotations

import repro
import repro.api as api
import repro.planning as planning

#: The frozen public surface of ``repro.api``.
EXPECTED_API = sorted(
    [
        "AdmissionError",
        "AgentPlanner",
        "AutoscalerConfig",
        "BackgroundTrainer",
        "BalsaAgent",
        "BalsaConfig",
        "BalsaEnvironment",
        "BaoAgent",
        "BeamPlanner",
        "BeamSearchPlanner",
        "ExperienceMetrics",
        "ExperienceSink",
        "ExperienceTuple",
        "ExperimentScale",
        "InProcessBackend",
        "LifecycleError",
        "MetricsRegistry",
        "ModelLifecycle",
        "ModelRegistry",
        "ModelSnapshot",
        "NeoAgent",
        "OnlineTrainerLoop",
        "Planner",
        "PlannerRegistry",
        "PlannerService",
        "PlanningError",
        "PlanningServer",
        "PlanRequest",
        "PlanResult",
        "PoolAutoscaler",
        "ProcessPoolBackend",
        "PromotionDecision",
        "RandomPlanner",
        "ReplayBuffer",
        "ScoringBackend",
        "ScoringBackendError",
        "ServiceMetrics",
        "ServiceResponse",
        "ShadowEvaluator",
        "ShadowTrafficStats",
        "ShmRingBuffer",
        "StateDictMismatchError",
        "ThreadedBatchingBackend",
        "Tracer",
        "TrafficShadower",
        "UnknownPlannerError",
        "WireFormatError",
        "WorkloadBenchmark",
        "make_job_benchmark",
        "make_scoring_backend",
        "make_tpch_benchmark",
        "merge_agent_experiences",
        "plan_request_from_json_dict",
        "plan_request_to_json_dict",
        "plan_result_from_json_dict",
        "plan_result_to_json_dict",
        "planner_version",
        "query_from_json_dict",
        "query_to_json_dict",
        "registry_from_benchmark",
        "retrain_from_experience",
    ]
)


def test_server_module_surface():
    import repro.server as server

    for name in server.__all__:
        assert getattr(server, name, None) is not None, (
            f"repro.server.{name} does not resolve"
        )
    import repro.api as api_module

    assert api_module.PlanningServer is server.PlanningServer
    assert api_module.TrafficShadower is server.TrafficShadower
    assert api_module.WireFormatError is server.WireFormatError


def test_every_api_name_resolves():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, f"repro.api.{name} does not resolve"


def test_api_surface_is_frozen():
    assert sorted(api.__all__) == EXPECTED_API, (
        "repro.api.__all__ drifted; update EXPECTED_API in this test only for "
        "deliberate API changes"
    )


def test_api_names_are_unique():
    assert len(api.__all__) == len(set(api.__all__))


def test_package_root_reexports():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, f"repro.{name} does not resolve"


def test_planning_module_surface():
    for name in planning.__all__:
        assert getattr(planning, name, None) is not None, (
            f"repro.planning.{name} does not resolve"
        )
    # The registry front door is callable and importable from the facade too.
    assert callable(planning.register) and callable(planning.get)
    assert api.PlanRequest is planning.PlanRequest
    assert api.AdmissionError is planning.AdmissionError


def test_service_reexports_admission_error():
    from repro.service import AdmissionError as ServiceAdmissionError

    assert ServiceAdmissionError is planning.AdmissionError


def test_scoring_module_surface():
    import repro.scoring as scoring

    for name in scoring.__all__:
        assert getattr(scoring, name, None) is not None, (
            f"repro.scoring.{name} does not resolve"
        )
    assert api.ScoringBackend is scoring.ScoringBackend
    assert api.ScoringBackendError is scoring.ScoringBackendError
    assert api.ProcessPoolBackend is scoring.ProcessPoolBackend
    assert api.ShmRingBuffer is scoring.ShmRingBuffer
    assert api.PoolAutoscaler is scoring.PoolAutoscaler
    assert api.AutoscalerConfig is scoring.AutoscalerConfig
    assert "process+shm" in scoring.BACKEND_NAMES
    # The historical bridge is the threaded backend, same counters type.
    from repro.service.batching import BatchedScoringBridge, ScoringBridgeStats

    assert issubclass(BatchedScoringBridge, scoring.ThreadedBatchingBackend)
    assert ScoringBridgeStats is scoring.ScoringBridgeStats


def test_lifecycle_surface_reexported():
    import repro.lifecycle as lifecycle

    for name in lifecycle.__all__:
        assert getattr(lifecycle, name, None) is not None, (
            f"repro.lifecycle.{name} does not resolve"
        )
    assert api.ModelRegistry is lifecycle.ModelRegistry
    assert api.BackgroundTrainer is lifecycle.BackgroundTrainer
    assert api.ShadowEvaluator is lifecycle.ShadowEvaluator
    assert api.PromotionDecision is lifecycle.PromotionDecision
