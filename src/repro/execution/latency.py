"""Converting operator work into simulated latency.

The latency model is the "hardware" of this reproduction.  Each physical
operator reports its work in abstract *tuple operations* weighted by
per-operator constants (hash build/probe, sort, index probe, tuple copy, ...),
and the model converts accumulated work into seconds by dividing by a
processing rate.  Optional log-normal noise models run-to-run variance, which
the paper's timeout slack factor (S = 2) exists to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng


@dataclass
class LatencyModel:
    """Work-to-latency conversion constants.

    The defaults are tuned so that, at the default data scales used in this
    repository, well-optimized JOB-like queries land in the 10 ms – 2 s range
    and disastrous plans are orders of magnitude slower — matching the dynamic
    range the paper reports for the real engines.

    Attributes:
        tuples_per_second: Baseline processing rate.
        cpu_tuple_cost: Cost to emit/copy one tuple (applied to operator outputs).
        seq_scan_cost: Cost to scan one stored tuple.
        index_probe_cost: Cost of one index lookup (log-factor applied separately).
        hash_build_cost: Cost to insert one tuple into a hash table.
        hash_probe_cost: Cost to probe one tuple against a hash table.
        sort_cost: Cost multiplier for ``n log2 n`` sort work in merge joins.
        nested_loop_cost: Cost per inner-tuple comparison in non-indexed
            nested-loop joins.
        startup_cost: Fixed per-operator startup work.
        memory_limit_tuples: Hash tables larger than this spill and pay
            ``spill_factor`` on build and probe.
        spill_factor: Multiplier for spilled hash joins.
        noise_std: Standard deviation of multiplicative log-normal latency
            noise (0 disables noise).
    """

    tuples_per_second: float = 2.0e6
    cpu_tuple_cost: float = 1.0
    seq_scan_cost: float = 1.0
    index_probe_cost: float = 2.0
    hash_build_cost: float = 2.0
    hash_probe_cost: float = 1.2
    sort_cost: float = 0.25
    nested_loop_cost: float = 0.08
    startup_cost: float = 50.0
    memory_limit_tuples: int = 200_000
    spill_factor: float = 3.0
    noise_std: float = 0.0

    def to_latency(self, work: float) -> float:
        """Convert accumulated work units to seconds."""
        return float(work) / self.tuples_per_second

    def to_work(self, latency_seconds: float) -> float:
        """Convert a latency budget (seconds) back into a work budget."""
        return float(latency_seconds) * self.tuples_per_second

    def apply_noise(
        self, latency: float, rng: int | np.random.Generator | None
    ) -> float:
        """Apply multiplicative log-normal noise to a latency (if enabled)."""
        if self.noise_std <= 0 or rng is None:
            return latency
        generator = new_rng(rng)
        factor = float(np.exp(generator.normal(0.0, self.noise_std)))
        return latency * factor
