"""Compare every registered planner on one workload through one harness.

Reproduces the qualitative comparison behind Figure 6 / Figure 15 / Table 3 of
the paper on a small JOB-like benchmark — experts, Bao, Neo-impl, Balsa and
the random baselines — but through the unified planning API: the trained
agents and the classical optimizers are registered under string names, and a
single loop sends the same ``PlanRequest`` envelope to each of them.

Run with::

    python examples/compare_optimizers.py
"""

from __future__ import annotations

from repro import BalsaAgent, BalsaConfig, BaoAgent, NeoAgent, make_job_benchmark
from repro.evaluation.experiments import run_planner_comparison
from repro.evaluation.reporting import format_table


def main() -> None:
    benchmark = make_job_benchmark(
        fact_rows=700, num_queries=28, num_templates=8, test_size=6,
        size_range=(4, 7), seed=1,
    )
    expert_runtimes = benchmark.expert_runtimes()

    # Train the learned planners first; the registry then serves them next to
    # the classical ones under the same names-to-planners mapping.
    bao = BaoAgent(benchmark.environment(), benchmark.expert("postgres"), seed=0)
    bao.train(num_iterations=6)

    config = BalsaConfig.small(seed=0, num_iterations=8)
    neo = NeoAgent(benchmark.environment(), benchmark.expert("postgres"), config,
                   expert_runtimes=expert_runtimes)
    neo.train()

    balsa = BalsaAgent(benchmark.environment(), BalsaConfig.small(seed=0, num_iterations=12),
                       expert_runtimes=expert_runtimes)
    balsa.train()

    # One registry, nine planners: "beam" is Balsa's trained value network
    # searched with the agent's own beam settings, "bao"/"neo" the trained
    # agents, the rest the classical baselines.
    registry = benchmark.planner_registry(
        network=balsa.value_network, bao=bao, neo=neo, seed=0,
        beam_planner=balsa.planner,
    )

    # One harness for every planner: each registry name answers the same
    # envelope, every chosen plan runs on the same simulated engine (the
    # engine charges disastrous plans pessimistically, so no cap is needed).
    result = run_planner_comparison(benchmark=benchmark, registry=registry)

    print(format_table(
        ["planner", "train workload runtime (s)", "test workload runtime (s)",
         "mean planning (ms)"],
        [
            [row["planner"], row["train_runtime"], row["test_runtime"],
             f"{row['mean_planning_ms']:.1f}"]
            for row in result["rows"]
        ],
        title="Workload runtimes on the simulated engine (lower is better)",
    ))


if __name__ == "__main__":
    main()
