"""Immutable, versioned snapshots of value-network weights.

A :class:`ModelSnapshot` is the unit of currency of the model lifecycle: the
:class:`~repro.lifecycle.registry.ModelRegistry` stores them, the
:class:`~repro.lifecycle.trainer.BackgroundTrainer` produces candidate ones,
the shadow gate decides which get promoted, and
:meth:`ModelSnapshot.restore` materialises a fresh
:class:`~repro.model.value_network.ValueNetwork` to hot-swap into the serving
path.

Snapshots wrap the network's self-describing ``state_dict()`` (weights +
architecture config + featuriser signature), so restoring against an
incompatible featurisation raises
:class:`~repro.model.value_network.StateDictMismatchError` instead of
silently mis-loading.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.featurization.featurizer import QueryPlanFeaturizer
from repro.model.value_network import ValueNetwork, ValueNetworkConfig


class LifecycleError(RuntimeError):
    """Base class for model-lifecycle errors (unknown versions, bad rollbacks)."""


def _frozen_state(state: dict) -> dict:
    """Mark a freshly produced state dict's weight arrays read-only.

    ``ValueNetwork.state_dict()`` already copies every array, so freezing in
    place avoids a second full copy per capture; only call this on a state
    dict nothing else holds references into.
    """
    weights = {}
    for name, values in state["weights"].items():
        array = np.asarray(values, dtype=np.float64)
        array.setflags(write=False)
        weights[name] = array
    frozen = dict(state)
    frozen["weights"] = weights
    return frozen


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable, versioned checkpoint of a value network.

    Attributes:
        version: Registry-assigned monotone version number (1, 2, ...).
        state: The network's ``state_dict()`` payload (weight arrays are
            copies marked read-only; treat the whole mapping as immutable).
        source: Human-readable provenance (``"bootstrap"``, ``"fine-tune"``,
            ...).
        parent_version: Version this snapshot was fine-tuned from (None for
            roots).
        created_at: ``time.time()`` at registration.
        tag: Optional free-form label.
    """

    version: int
    state: dict = field(repr=False)
    source: str = ""
    parent_version: int | None = None
    created_at: float = field(default_factory=time.time)
    tag: str = ""

    @property
    def featurizer_signature(self) -> tuple | None:
        """The featuriser identity the weights were trained against."""
        signature = self.state.get("featurizer_signature")
        return tuple(signature) if signature is not None else None

    @property
    def network_config(self) -> ValueNetworkConfig:
        """The architecture the weights belong to."""
        config = dict(self.state.get("config", {}))
        if "tree_channels" in config:
            config["tree_channels"] = tuple(config["tree_channels"])
        return ValueNetworkConfig(**config)

    def restore(self, featurizer: QueryPlanFeaturizer) -> ValueNetwork:
        """Materialise a fresh network carrying this snapshot's weights.

        The returned network has its own identity (fresh ``uid``), so serving
        caches keyed on :meth:`ValueNetwork.version_key` treat it as a new
        version — exactly what a hot swap needs.

        Raises:
            StateDictMismatchError: ``featurizer`` does not match the
                signature the weights were trained against.
        """
        network = ValueNetwork(featurizer, self.network_config)
        network.load_state_dict(self.state)
        return network

    @classmethod
    def capture(
        cls,
        network: ValueNetwork,
        version: int,
        source: str = "",
        parent_version: int | None = None,
        tag: str = "",
    ) -> "ModelSnapshot":
        """Snapshot ``network``'s current weights under ``version``."""
        return cls(
            version=version,
            state=_frozen_state(network.state_dict()),
            source=source,
            parent_version=parent_version,
            tag=tag,
        )
