"""Telemetry: tracing, metrics, events, logs, profiling, SLOs and alerts.

Independent pillars, all stdlib-only and all safe to leave enabled:

- :mod:`repro.telemetry.trace` — per-request span trees carried across the
  gateway thread pool (contextvars), the scorer processes (wire wrapper) and
  the shared-cache socket (traced frames); a bounded ring behind
  ``GET /v1/traces`` plus single-trace lookup at ``GET /v1/traces/<id>``.
- :mod:`repro.telemetry.metrics` — counters/gauges/histograms published at
  scrape time from the existing per-subsystem stat blocks; Prometheus text
  behind ``GET /metrics``; snapshots mergeable across a sharded fleet.
- :mod:`repro.telemetry.events` — bounded lifecycle event bus (promotions,
  rollbacks, scorer respawns, alerts) feeding the ``GET /v1/metrics/stream``
  SSE endpoint.
- :mod:`repro.telemetry.profiling` — low-overhead sampling wall profiler
  (folded stacks, flamegraph JSON) behind ``GET /v1/profile``.
- :mod:`repro.telemetry.slo` — declarative SLO objectives evaluated against
  live registry snapshots with multi-window burn-rate math.
- :mod:`repro.telemetry.alerts` — the pending/firing/resolved alert state
  machine behind ``GET /v1/alerts``, publishing to the event bus and driving
  the gateway's protective actions.

:mod:`repro.telemetry.logging` adds one-line-JSON structured logging shared
by gateway, supervisor and scorer processes, with optional token-bucket rate
limiting (``REPRO_LOG_RATE``).
"""

from repro.telemetry.alerts import Alert, AlertManager
from repro.telemetry.events import Event, EventBus, emit_event, get_event_bus
from repro.telemetry.logging import (
    JsonLogFormatter,
    RateLimitFilter,
    configure_json_logging,
    get_log_context,
    logs_suppressed_total,
    maybe_configure_from_env,
    set_log_context,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_snapshot,
)
from repro.telemetry.profiling import (
    SamplingProfiler,
    flamegraph_from_profile,
    get_profiler,
    merge_profiles,
    start_profiler,
    stop_profiler,
)
from repro.telemetry.publish import GatewayTelemetry
from repro.telemetry.slo import (
    SeriesIndex,
    SloEvaluator,
    SloObjective,
    SloStatus,
    default_slo_objectives,
)
from repro.telemetry.trace import (
    Span,
    Trace,
    Tracer,
    add_span,
    annotate,
    current_trace_id,
    enabled,
    get_tracer,
    new_trace_id,
    set_enabled,
    span,
    start_trace,
    valid_trace_id,
)

__all__ = [
    "Alert",
    "AlertManager",
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventBus",
    "Gauge",
    "GatewayTelemetry",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "RateLimitFilter",
    "SamplingProfiler",
    "SeriesIndex",
    "SloEvaluator",
    "SloObjective",
    "SloStatus",
    "Span",
    "Trace",
    "Tracer",
    "add_span",
    "annotate",
    "configure_json_logging",
    "current_trace_id",
    "default_slo_objectives",
    "emit_event",
    "enabled",
    "flamegraph_from_profile",
    "get_event_bus",
    "get_log_context",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "logs_suppressed_total",
    "maybe_configure_from_env",
    "merge_profiles",
    "merge_snapshots",
    "new_trace_id",
    "render_snapshot",
    "set_enabled",
    "set_log_context",
    "span",
    "start_profiler",
    "start_trace",
    "stop_profiler",
    "valid_trace_id",
]
