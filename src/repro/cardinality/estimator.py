"""The histogram (PostgreSQL-style) cardinality estimator.

Paper §3.3: *"we pick PostgreSQL's estimator for its simplicity (per-column
histograms; heuristically assumes independence for joins; 'magic constants'
for complex filters)"*.  This class reproduces that estimator family:

- single-table selectivities come from per-column statistics (MCV lists for
  equality, equi-depth histograms for ranges, a magic constant for anything
  the statistics cannot answer), multiplied under the attribute-independence
  assumption;
- equi-join selectivity between two relations is ``1 / max(ndv_left,
  ndv_right)`` (System R / PostgreSQL's ``eqjoinsel``);
- a multi-table estimate multiplies base cardinalities, filter selectivities
  and the join selectivities of every join predicate inside the alias set.

Like the real thing, it can be off by orders of magnitude on skewed,
correlated data — which is exactly the property the paper leans on when
arguing that an inaccurate simulator still bootstraps Balsa effectively.
"""

from __future__ import annotations

from repro.cardinality.base import CardinalityEstimator
from repro.sql.expr import ComparisonOp, FilterPredicate
from repro.sql.query import Query
from repro.storage.database import Database
from repro.storage.statistics import TableStatistics, collect_statistics

#: Selectivity assigned to predicates the statistics cannot evaluate
#: (PostgreSQL uses similar "magic" defaults, e.g. 0.005 for LIKE).
DEFAULT_MAGIC_SELECTIVITY = 0.01


class HistogramEstimator(CardinalityEstimator):
    """Histogram-based cardinality estimation over collected statistics.

    Args:
        database: The database to profile.
        num_buckets: Histogram buckets per column.
        num_mcv: Most-common values tracked per column.
        statistics: Pre-collected statistics (profiled from ``database`` when
            omitted).
    """

    def __init__(
        self,
        database: Database,
        num_buckets: int = 20,
        num_mcv: int = 10,
        statistics: dict[str, TableStatistics] | None = None,
    ):
        self.database = database
        self.statistics = statistics or collect_statistics(
            database, num_buckets=num_buckets, num_mcv=num_mcv
        )
        # Estimates are deterministic per (query, alias set); the DP enumerator
        # asks for the same subsets thousands of times, so memoise them.
        self._cache: dict[tuple[str, frozenset], float] = {}

    # ------------------------------------------------------------------ #
    # CardinalityEstimator interface
    # ------------------------------------------------------------------ #
    def base_rows(self, query: Query, alias: str) -> float:
        table = query.alias_to_table[alias]
        return float(self.statistics[table].num_rows)

    def estimate(self, query: Query, aliases: frozenset[str]) -> float:
        aliases = frozenset(aliases)
        if not aliases:
            raise ValueError("aliases must be non-empty")
        key = (query.name, aliases)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cardinality = 1.0
        for alias in aliases:
            cardinality *= self._filtered_rows(query, alias)
        for predicate in query.joins_within(aliases):
            cardinality *= self._join_selectivity(query, predicate)
        cardinality = max(cardinality, 0.0)
        self._cache[key] = cardinality
        return cardinality

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _filtered_rows(self, query: Query, alias: str) -> float:
        table = query.alias_to_table[alias]
        stats = self.statistics[table]
        rows = float(stats.num_rows)
        selectivity = 1.0
        for predicate in query.filters_for(alias):
            selectivity *= self._filter_selectivity(stats, predicate)
        return max(rows * selectivity, 1e-6)

    def _filter_selectivity(
        self, stats: TableStatistics, predicate: FilterPredicate
    ) -> float:
        try:
            column = stats.column(predicate.column)
        except KeyError:
            return DEFAULT_MAGIC_SELECTIVITY
        op = predicate.op
        if op is ComparisonOp.EQ:
            return column.equality_selectivity(predicate.value)
        if op is ComparisonOp.NE:
            return max(0.0, 1.0 - column.equality_selectivity(predicate.value))
        if op is ComparisonOp.IN:
            total = sum(column.equality_selectivity(v) for v in predicate.value)
            return min(1.0, total)
        if op is ComparisonOp.LT:
            return column.range_selectivity(None, float(predicate.value) - 1e-9)
        if op is ComparisonOp.LE:
            return column.range_selectivity(None, float(predicate.value))
        if op is ComparisonOp.GT:
            return column.range_selectivity(float(predicate.value) + 1e-9, None)
        if op is ComparisonOp.GE:
            return column.range_selectivity(float(predicate.value), None)
        if op is ComparisonOp.BETWEEN:
            low, high = predicate.value
            return column.range_selectivity(float(low), float(high))
        return DEFAULT_MAGIC_SELECTIVITY

    def _join_selectivity(self, query: Query, predicate) -> float:
        left_table = query.alias_to_table[predicate.left_alias]
        right_table = query.alias_to_table[predicate.right_alias]
        left_stats = self.statistics[left_table]
        right_stats = self.statistics[right_table]
        try:
            left_ndv = max(1, left_stats.column(predicate.left_column).num_distinct)
        except KeyError:
            left_ndv = max(1, left_stats.num_rows)
        try:
            right_ndv = max(1, right_stats.column(predicate.right_column).num_distinct)
        except KeyError:
            right_ndv = max(1, right_stats.num_rows)
        return 1.0 / float(max(left_ndv, right_ndv))
