"""Tests for the planner service: cache, coalescing, concurrency, metrics."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.model.trainer import ValueNetworkTrainer
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.plans.validation import validate_plan
from repro.search.beam import BeamSearchPlanner
from repro.service.batching import BatchedScoringBridge
from repro.service.cache import ServicePlanCache
from repro.service.service import PlannerService
from repro.sql.query import Query
from repro.workloads.benchmark import make_job_benchmark


def small_network(featurizer, seed: int = 0) -> ValueNetwork:
    return ValueNetwork(
        featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8,
            seed=seed,
        ),
    )


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def service_benchmark():
    return make_job_benchmark(
        fact_rows=300, num_queries=10, num_templates=4, test_size=3,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def service_queries(service_benchmark):
    return list(service_benchmark.train_queries)


@pytest.fixture()
def network(service_benchmark):
    return small_network(service_benchmark.featurizer)


class TestQueryFingerprint:
    def test_stable_and_name_insensitive(self, service_queries):
        query = service_queries[0]
        renamed = Query(
            name="renamed", tables=query.tables, joins=query.joins, filters=query.filters
        )
        assert query.fingerprint() == renamed.fingerprint()

    def test_from_list_order_insensitive(self, service_queries):
        query = service_queries[0]
        reordered = Query(
            name=query.name,
            tables=tuple(reversed(query.tables)),
            joins=tuple(reversed(query.joins)),
            filters=tuple(reversed(query.filters)),
        )
        assert query.fingerprint() == reordered.fingerprint()

    def test_distinct_queries_distinct_fingerprints(self, service_queries):
        fingerprints = {q.fingerprint() for q in service_queries}
        assert len(fingerprints) == len(service_queries)


class TestServicePlanCache:
    def test_lru_eviction(self):
        cache = ServicePlanCache(capacity=2)
        cache.store(("a", 0), "ra")
        cache.store(("b", 0), "rb")
        assert cache.lookup(("a", 0)) == "ra"  # refresh a's recency
        cache.store(("c", 0), "rc")  # evicts b
        assert cache.lookup(("b", 0)) is None
        assert cache.lookup(("a", 0)) == "ra"
        assert cache.lookup(("c", 0)) == "rc"
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_zero_capacity_disables(self):
        cache = ServicePlanCache(capacity=0)
        cache.store(("a", 0), "ra")
        assert cache.lookup(("a", 0)) is None
        assert len(cache) == 0


class TestCacheAcrossModelVersions:
    def test_hit_then_invalidated_by_version_bump(self, service_queries, network):
        with PlannerService(network, planner=small_planner(), max_workers=1) as service:
            first = service.plan(service_queries[0])
            second = service.plan(service_queries[0])
            assert not first.cache_hit
            assert second.cache_hit
            assert second.best_plan.fingerprint() == first.best_plan.fingerprint()

            network.bump_version()
            third = service.plan(service_queries[0])
            assert not third.cache_hit

    def test_set_state_and_training_bump_version(self, service_benchmark, network):
        featurizer = service_benchmark.featurizer
        before = network.version_key()
        network.set_state(network.get_state())
        after_load = network.version_key()
        assert after_load != before

        queries = list(service_benchmark.train_queries)[:2]
        planner = small_planner()
        examples, labels = [], []
        for query in queries:
            result = planner.search(query, network)
            examples.append(featurizer.featurize(query, result.best_plan))
            labels.append(1.0)
        trainer = ValueNetworkTrainer(network, max_epochs=1, validation_fraction=0.0)
        trainer.fit(examples, labels)
        assert network.version_key() != after_load

    def test_renamed_query_hits_cache(self, service_queries, network):
        with PlannerService(network, planner=small_planner(), max_workers=1) as service:
            query = service_queries[0]
            service.plan(query)
            renamed = Query(
                name="other-name", tables=query.tables, joins=query.joins,
                filters=query.filters,
            )
            assert service.plan(renamed).cache_hit

    def test_separate_networks_do_not_share_entries(self, service_benchmark, service_queries):
        net_a = small_network(service_benchmark.featurizer, seed=0)
        net_b = small_network(service_benchmark.featurizer, seed=0)
        holder = {"net": net_a}
        with PlannerService(
            network_provider=lambda: holder["net"], planner=small_planner(), max_workers=1
        ) as service:
            service.plan(service_queries[0])
            holder["net"] = net_b
            assert not service.plan(service_queries[0]).cache_hit


class TestConcurrentPlanning:
    def test_concurrent_matches_serial(self, service_queries, network):
        planner = small_planner()
        serial = [planner.search(query, network) for query in service_queries]
        with PlannerService(
            network, planner=small_planner(), max_workers=4, coalesce_scoring=True
        ) as service:
            concurrent = service.plan_many(service_queries)
        for direct, response in zip(serial, concurrent):
            assert not response.cache_hit
            assert response.best_plan.fingerprint() == direct.best_plan.fingerprint()
            assert [p.fingerprint() for p in response.result.plans] == [
                p.fingerprint() for p in direct.plans
            ]

    def test_plans_are_valid(self, service_queries, network):
        with PlannerService(network, planner=small_planner(), max_workers=4) as service:
            for response in service.plan_many(service_queries):
                validate_plan(response.query, response.best_plan)

    def test_single_flight_deduplicates(self, service_queries, network):
        class SlowPlanner(BeamSearchPlanner):
            def search(self, query, net, score_fn=None, top_k=None, deadline=None):
                result = super().search(
                    query, net, score_fn=score_fn, top_k=top_k, deadline=deadline
                )
                time.sleep(0.05)
                return result

        planner = SlowPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)
        query = service_queries[0]
        with PlannerService(
            network, planner=planner, max_workers=4, coalesce_scoring=False
        ) as service:
            responses = [f.result() for f in [service.submit(query) for _ in range(8)]]
        fingerprints = {r.best_plan.fingerprint() for r in responses}
        assert len(fingerprints) == 1
        metrics = service.metrics()
        assert metrics.cache_misses == 1
        assert metrics.cache_hits + metrics.coalesced_requests == 7

    def test_scoring_bridge_matches_direct_predictions(self, service_queries, network):
        bridge = BatchedScoringBridge(lambda: network, coalesce_wait_seconds=0.0)
        try:
            query = service_queries[0]
            planner = small_planner()
            direct = planner.search(query, network)
            bridged = planner.search(query, network, score_fn=bridge.score)
            np.testing.assert_array_equal(
                np.asarray(direct.predicted_latencies),
                np.asarray(bridged.predicted_latencies),
            )
            assert bridge.stats().requests > 0
        finally:
            bridge.close()


class TestServiceMetrics:
    def test_accounting(self, service_queries, network):
        with PlannerService(network, planner=small_planner(), max_workers=2) as service:
            service.plan_many(service_queries)
            service.plan_many(service_queries)
            metrics = service.metrics()

        assert metrics.requests == 2 * len(service_queries)
        assert metrics.cache_hits == len(service_queries)
        assert metrics.cache_misses == len(service_queries)
        assert metrics.coalesced_requests == 0
        assert metrics.hit_rate == pytest.approx(0.5)
        assert metrics.total_planning_seconds > 0
        assert metrics.mean_planning_seconds > 0
        assert metrics.wall_seconds > 0
        assert metrics.queries_per_second > 0
        assert metrics.max_queue_wait_seconds >= metrics.mean_queue_wait_seconds >= 0
        assert metrics.cache.hits == len(service_queries)
        assert metrics.cache.size == len(service_queries)

        log = service.request_log()
        assert len(log) == metrics.requests
        assert sum(entry.cache_hit for entry in log) == metrics.cache_hits
        assert all(entry.service_seconds >= entry.planning_seconds for entry in log)

        as_dict = metrics.as_dict()
        assert as_dict["requests"] == metrics.requests
        assert "queries_per_second" in as_dict
        assert metrics.format_report()

    def test_reset_metrics(self, service_queries, network):
        with PlannerService(network, planner=small_planner(), max_workers=1) as service:
            service.plan(service_queries[0])
            service.reset_metrics()
            metrics = service.metrics()
            assert metrics.requests == 0
            assert metrics.wall_seconds == 0.0

    def test_closed_service_rejects_requests(self, service_queries, network):
        service = PlannerService(network, planner=small_planner(), max_workers=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.plan(service_queries[0])


class TestAgentThroughService:
    def test_agent_concurrent_planning_matches_serial(self, service_benchmark):
        def run(workers: int):
            config = BalsaConfig(
                seed=0,
                num_iterations=1,
                beam_size=3,
                top_k=2,
                enumerate_scan_operators=False,
                sim_max_points_per_query=200,
                sim_max_epochs=3,
                update_epochs=2,
                eval_interval=0,
                planner_workers=workers,
                coalesce_scoring=False,
                network=ValueNetworkConfig(
                    query_hidden=16, query_embedding=8, tree_channels=(16, 8),
                    head_hidden=8, seed=0,
                ),
            )
            agent = BalsaAgent(service_benchmark.environment(), config)
            agent.train(1)
            plans = sorted(
                (record.query_name, record.plan.fingerprint())
                for record in agent.experience.records
            )
            agent.close()
            return plans

        assert run(1) == run(4)

    def test_agent_service_caches_repeated_evaluations(self, service_benchmark):
        config = BalsaConfig(
            seed=0, num_iterations=0, beam_size=3, top_k=2,
            enumerate_scan_operators=False, use_simulation=False,
            eval_interval=0, planner_workers=2,
        )
        agent = BalsaAgent(service_benchmark.environment(), config)
        agent.bootstrap_from_simulation()
        queries = list(service_benchmark.test_queries)
        first = agent.evaluate(queries)
        second = agent.evaluate(queries)
        assert {n: p.fingerprint() for n, (p, _) in first.items()} == {
            n: p.fingerprint() for n, (p, _) in second.items()
        }
        metrics = agent.planner_service.metrics()
        assert metrics.cache_hits >= len(queries)
        agent.close()
