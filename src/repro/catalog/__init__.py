"""Schemas and synthetic data generation.

The paper evaluates on the real IMDb dataset (Join Order Benchmark) and
TPC-H SF-10.  Neither is available offline, so this package provides
structurally faithful synthetic equivalents:

- :func:`repro.catalog.imdb.make_imdb_schema` — 16 tables mirroring the IMDb
  schema used by JOB (title, cast_info, movie_companies, ...), with the same
  PK/FK graph and Zipf-skewed foreign keys / categorical columns.
- :func:`repro.catalog.tpch.make_tpch_schema` — the 8 TPC-H tables with
  uniform value distributions, as in the benchmark spec.

Scale is controlled by a single ``scale`` multiplier so tests and benchmarks
can run on tiny instances while examples use larger ones.
"""

from repro.catalog.schema import ColumnDef, ForeignKey, Schema, TableDef
from repro.catalog.datagen import generate_database
from repro.catalog.imdb import make_imdb_schema
from repro.catalog.tpch import make_tpch_schema

__all__ = [
    "ColumnDef",
    "ForeignKey",
    "Schema",
    "TableDef",
    "generate_database",
    "make_imdb_schema",
    "make_tpch_schema",
]
