"""The experience sink: record live-traffic observations off the hot path.

:class:`ExperienceSink` is the request-path half of the online-learning loop
(paper §4: plan → execute → observe → retrain).  The gateway calls
:meth:`ExperienceSink.record` with what it just served — the query, the chosen
plan and the model's predicted cost — and the call is nothing but a lock
acquire and a bounded-deque append:

- **never blocks**: a slow or stalled consumer fills the queue, after which
  new observations evict the oldest (and are counted as drops) instead of
  waiting;
- **never raises**: any failure is swallowed and counted, because a learning
  subsystem must not fail a foreground request;
- **self-auditing**: every call is timed, and a call that exceeds
  ``stall_threshold_seconds`` increments a ``stalls`` counter — the
  acceptance metric the online-learning soak holds at zero.

The expensive parts — computing the simulated-executed cost under the
yardstick, dedup, training — happen on the consumer side
(:class:`~repro.experience.loop.OnlineTrainerLoop`), which calls
:meth:`drain`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.experience.replay import ExperienceTuple

#: Observe calls slower than this are counted as request-path stalls.  The
#: budget is generous — an uncontended lock + deque append is microseconds —
#: so a nonzero counter means something actually blocked the hot path.
DEFAULT_STALL_THRESHOLD_SECONDS = 0.05


@dataclass
class SinkStats:
    """Counters describing the request-path sink.

    Attributes:
        recorded: Observations accepted into the queue.
        dropped: Oldest observations evicted because the queue was full (the
            backpressure policy: drop history, never block the request).
        errors: ``record`` calls that failed internally (swallowed).
        depth: Observations currently queued awaiting the consumer.
        capacity: Queue bound.
        stalls: ``record`` calls that exceeded the stall threshold.
        max_record_seconds: Slowest ``record`` call seen (the watermark the
            stall counter is judged against).
    """

    recorded: int = 0
    dropped: int = 0
    errors: int = 0
    depth: int = 0
    capacity: int = 0
    stalls: int = 0
    max_record_seconds: float = 0.0

    def to_json_dict(self) -> dict:
        """JSON-safe dict form (all fields are JSON-native)."""
        return asdict(self)


class ExperienceSink:
    """A bounded, drop-counting queue between the request path and training.

    Args:
        capacity: Queue bound; when full, the oldest observation is evicted
            (and counted) so the newest traffic is what training sees.
        stall_threshold_seconds: ``record`` latency above which the call is
            counted as a stall (see :data:`DEFAULT_STALL_THRESHOLD_SECONDS`).
    """

    def __init__(
        self,
        capacity: int = 1024,
        stall_threshold_seconds: float = DEFAULT_STALL_THRESHOLD_SECONDS,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if stall_threshold_seconds <= 0:
            raise ValueError("stall_threshold_seconds must be positive")
        self.capacity = capacity
        self.stall_threshold_seconds = stall_threshold_seconds
        self._queue: deque["ExperienceTuple"] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0
        self._dropped = 0
        self._errors = 0
        self._stalls = 0
        self._max_record_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Request-path half
    # ------------------------------------------------------------------ #
    def record(self, observation: "ExperienceTuple") -> bool:
        """Queue one observation (never blocks, never raises).

        Returns True when the observation was queued without evicting
        anything, False when it displaced the oldest entry (queue full) or
        failed outright.
        """
        started = time.perf_counter()
        accepted = False
        evicted = False
        try:
            with self._lock:
                evicted = len(self._queue) == self._queue.maxlen
                self._queue.append(observation)
                self._recorded += 1
                if evicted:
                    self._dropped += 1
            accepted = not evicted
        except Exception:  # noqa: BLE001 - the hot path must not fail
            with self._lock:
                self._errors += 1
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                if elapsed > self._max_record_seconds:
                    self._max_record_seconds = elapsed
                if elapsed > self.stall_threshold_seconds:
                    self._stalls += 1
        return accepted

    # ------------------------------------------------------------------ #
    # Consumer half
    # ------------------------------------------------------------------ #
    def drain(self, max_items: int | None = None) -> list["ExperienceTuple"]:
        """Pop up to ``max_items`` queued observations (oldest first)."""
        with self._lock:
            count = len(self._queue) if max_items is None else min(
                max_items, len(self._queue)
            )
            return [self._queue.popleft() for _ in range(count)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def stats(self) -> SinkStats:
        """A snapshot of the sink counters."""
        with self._lock:
            return SinkStats(
                recorded=self._recorded,
                dropped=self._dropped,
                errors=self._errors,
                depth=len(self._queue),
                capacity=self.capacity,
                stalls=self._stalls,
                max_record_seconds=self._max_record_seconds,
            )
