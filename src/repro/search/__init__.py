"""Plan search: best-first beam search guided by the value network (paper §4.2)."""

from repro.search.state import SearchState
from repro.search.beam import BeamSearchPlanner, PlannerResult

__all__ = [
    "SearchState",
    "BeamSearchPlanner",
    "PlannerResult",
]
