"""JSON wire codecs for the HTTP serving gateway.

The planning envelopes were designed JSON-friendly (plain dataclasses, no
live objects in the request path); this module makes the mapping explicit.
Every codec is a pair of module-level functions — ``*_to_json_dict`` /
``*_from_json_dict`` — plus thin methods on the dataclasses themselves that
delegate here, so both ``request.to_json_dict()`` and
``plan_request_to_json_dict(request)`` work.

Design rules:

- **Typed rejection.**  Malformed input raises :class:`WireFormatError`
  (never a bare ``KeyError``/``TypeError``), so the gateway maps decode
  failures to HTTP 400 without guessing.
- **Strict JSON.**  Non-finite floats (``nan``/``inf`` predictions from
  samplers) are encoded as the strings ``"NaN"`` / ``"Infinity"`` /
  ``"-Infinity"`` rather than relying on Python's non-standard JSON
  extensions; decoders map them back.  The gateway serialises with
  ``allow_nan=False`` so a codec bug fails loudly instead of emitting
  invalid JSON.
- **Queries travel structurally or by name.**  A request's ``query`` field
  may be a full structural object (tables/joins/filters) or a workload query
  name resolved by the gateway's ``query_resolver``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanNode, ScanOperator
from repro.sql.expr import ComparisonOp, FilterPredicate, JoinPredicate
from repro.sql.query import Query, TableRef

if TYPE_CHECKING:
    from repro.lifecycle.shadow import PromotionDecision
    from repro.planning.envelope import PlanRequest, PlanResult
    from repro.service.metrics import ServiceMetrics
    from repro.service.service import ServiceResponse

#: Resolves a by-name ``query`` field to a workload query.
QueryResolver = Callable[[str], Query]


class WireFormatError(ValueError):
    """A JSON payload does not decode to the expected wire shape."""


# ---------------------------------------------------------------------- #
# Scalar helpers
# ---------------------------------------------------------------------- #
def _float_to_wire(value: float) -> float | str:
    """JSON-safe float: non-finite values become their string spellings."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


_WIRE_FLOATS = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}


def _wire_floats_back(value: Any) -> Any:
    """Map the non-finite wire spellings back to floats, recursively.

    The inverse of :func:`jsonable` for the free-form ``knobs`` / ``extra``
    mappings.  A *legitimate* string value of ``"NaN"`` is indistinguishable
    from an encoded float on the wire — the documented trade-off of keeping
    the format strictly JSON.
    """
    if isinstance(value, str):
        return _WIRE_FLOATS.get(value, value)
    if isinstance(value, dict):
        return {name: _wire_floats_back(item) for name, item in value.items()}
    if isinstance(value, list):
        return [_wire_floats_back(item) for item in value]
    return value


def _float_from_wire(value: object, context: str) -> float:
    if isinstance(value, bool):
        raise WireFormatError(f"{context}: expected a number, got {value!r}")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str) and value in _WIRE_FLOATS:
        return _WIRE_FLOATS[value]
    raise WireFormatError(f"{context}: expected a number, got {value!r}")


def _require_dict(payload: object, context: str) -> dict:
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"{context}: expected a JSON object, got {type(payload).__name__}"
        )
    return payload


def _require_list(value: object, context: str) -> list:
    if not isinstance(value, list):
        raise WireFormatError(
            f"{context}: expected a JSON array, got {type(value).__name__}"
        )
    return value


def _require_str(value: object, context: str) -> str:
    if not isinstance(value, str):
        raise WireFormatError(
            f"{context}: expected a string, got {type(value).__name__}"
        )
    return value


def _require_int(value: object, context: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireFormatError(
            f"{context}: expected an integer, got {value!r}"
        )
    return value


def jsonable(value: Any) -> Any:
    """Best-effort conversion of ``value`` into JSON-native types.

    Used for the free-form ``knobs`` / ``extra`` mappings: numpy scalars
    become Python numbers, tuples/sets become lists, non-finite floats become
    their wire spellings, and anything else unrepresentable falls back to
    ``str`` (the fields are advisory, never load-bearing).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return _float_to_wire(value)
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    if hasattr(value, "item"):  # numpy scalars
        try:
            return jsonable(value.item())
        except (TypeError, ValueError):
            pass
    return str(value)


# ---------------------------------------------------------------------- #
# Query
# ---------------------------------------------------------------------- #
def query_to_json_dict(query: Query) -> dict:
    """Structural JSON form of a :class:`Query` (tables, joins, filters)."""
    filters = []
    for flt in query.filters:
        value: Any = flt.value
        if isinstance(value, tuple):
            value = [jsonable(item) for item in value]
        else:
            value = jsonable(value)
        filters.append(
            {"alias": flt.alias, "column": flt.column, "op": flt.op.value, "value": value}
        )
    return {
        "name": query.name,
        "tables": [{"table": t.table, "alias": t.alias} for t in query.tables],
        "joins": [
            {
                "left_alias": j.left_alias,
                "left_column": j.left_column,
                "right_alias": j.right_alias,
                "right_column": j.right_column,
            }
            for j in query.joins
        ],
        "filters": filters,
    }


def query_from_json_dict(payload: object) -> Query:
    """Decode :func:`query_to_json_dict` output back into a :class:`Query`."""
    payload = _require_dict(payload, "query")
    name = _require_str(payload.get("name", ""), "query.name")
    raw_tables = _require_list(payload.get("tables"), "query.tables")
    if not raw_tables:
        raise WireFormatError("query.tables: a query needs at least one table")
    tables = []
    for index, entry in enumerate(raw_tables):
        entry = _require_dict(entry, f"query.tables[{index}]")
        tables.append(
            TableRef(
                table=_require_str(entry.get("table"), f"query.tables[{index}].table"),
                alias=_require_str(entry.get("alias"), f"query.tables[{index}].alias"),
            )
        )
    joins = []
    for index, entry in enumerate(_require_list(payload.get("joins", []), "query.joins")):
        entry = _require_dict(entry, f"query.joins[{index}]")
        context = f"query.joins[{index}]"
        joins.append(
            JoinPredicate(
                left_alias=_require_str(entry.get("left_alias"), context),
                left_column=_require_str(entry.get("left_column"), context),
                right_alias=_require_str(entry.get("right_alias"), context),
                right_column=_require_str(entry.get("right_column"), context),
            )
        )
    filters = []
    for index, entry in enumerate(
        _require_list(payload.get("filters", []), "query.filters")
    ):
        entry = _require_dict(entry, f"query.filters[{index}]")
        context = f"query.filters[{index}]"
        op_value = _require_str(entry.get("op"), f"{context}.op")
        try:
            op = ComparisonOp(op_value)
        except ValueError:
            raise WireFormatError(
                f"{context}.op: unknown comparison operator {op_value!r}"
            ) from None
        value = entry.get("value")
        if op in (ComparisonOp.IN, ComparisonOp.BETWEEN):
            value = tuple(_require_list(value, f"{context}.value"))
            if op is ComparisonOp.BETWEEN and len(value) != 2:
                raise WireFormatError(
                    f"{context}.value: BETWEEN needs exactly [low, high]"
                )
        filters.append(
            FilterPredicate(
                alias=_require_str(entry.get("alias"), f"{context}.alias"),
                column=_require_str(entry.get("column"), f"{context}.column"),
                op=op,
                value=value,
            )
        )
    try:
        return Query(
            name=name, tables=tuple(tables), joins=tuple(joins), filters=tuple(filters)
        )
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"query: {error}") from error


# ---------------------------------------------------------------------- #
# Plans
# ---------------------------------------------------------------------- #
def plan_to_json_dict(plan: PlanNode) -> dict:
    """JSON form of a plan tree (scan leaves and join internals)."""
    if isinstance(plan, ScanNode):
        return {
            "scan": {
                "alias": plan.alias,
                "table": plan.table,
                "operator": plan.operator.value,
            }
        }
    if isinstance(plan, JoinNode):
        return {
            "join": {
                "operator": plan.operator.value,
                "left": plan_to_json_dict(plan.left),
                "right": plan_to_json_dict(plan.right),
            }
        }
    raise WireFormatError(f"cannot encode plan node of type {type(plan).__name__}")


def plan_from_json_dict(payload: object) -> PlanNode:
    """Decode :func:`plan_to_json_dict` output back into a plan tree."""
    payload = _require_dict(payload, "plan")
    if "scan" in payload:
        scan = _require_dict(payload["scan"], "plan.scan")
        try:
            operator = ScanOperator(scan.get("operator", ScanOperator.SEQ_SCAN.value))
        except ValueError:
            raise WireFormatError(
                f"plan.scan.operator: unknown operator {scan.get('operator')!r}"
            ) from None
        return ScanNode(
            alias=_require_str(scan.get("alias"), "plan.scan.alias"),
            table=_require_str(scan.get("table"), "plan.scan.table"),
            operator=operator,
        )
    if "join" in payload:
        join = _require_dict(payload["join"], "plan.join")
        try:
            operator = JoinOperator(join.get("operator", JoinOperator.HASH_JOIN.value))
        except ValueError:
            raise WireFormatError(
                f"plan.join.operator: unknown operator {join.get('operator')!r}"
            ) from None
        try:
            return JoinNode(
                left=plan_from_json_dict(join.get("left")),
                right=plan_from_json_dict(join.get("right")),
                operator=operator,
            )
        except ValueError as error:  # overlapping alias sets
            raise WireFormatError(f"plan.join: {error}") from error
    raise WireFormatError("plan: expected exactly one of 'scan' or 'join'")


# ---------------------------------------------------------------------- #
# PlanRequest
# ---------------------------------------------------------------------- #
def plan_request_to_json_dict(request: "PlanRequest") -> dict:
    """JSON form of a :class:`~repro.planning.envelope.PlanRequest`."""
    return {
        "query": query_to_json_dict(request.query),
        "k": request.k,
        "deadline_seconds": request.deadline_seconds,
        "priority": request.priority,
        "knobs": {str(name): jsonable(value) for name, value in request.knobs.items()},
    }


def plan_request_from_json_dict(
    payload: object, query_resolver: QueryResolver | None = None
) -> "PlanRequest":
    """Decode a request payload; ``query`` may be structural or a name.

    Args:
        payload: Decoded JSON object.
        query_resolver: Maps a by-name ``query`` field (a string) to a
            workload :class:`Query`.  Required for by-name requests; a
            resolver miss (``KeyError``) becomes a :class:`WireFormatError`.
    """
    from repro.planning.envelope import PlanRequest

    payload = _require_dict(payload, "plan request")
    raw_query = payload.get("query")
    if isinstance(raw_query, str):
        if query_resolver is None:
            raise WireFormatError(
                f"query: by-name reference {raw_query!r} needs a gateway "
                "workload to resolve against"
            )
        try:
            query = query_resolver(raw_query)
        except KeyError:
            raise WireFormatError(f"query: unknown query name {raw_query!r}") from None
    else:
        query = query_from_json_dict(raw_query)
    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        deadline = _float_from_wire(deadline, "deadline_seconds")
    knobs = _require_dict(payload.get("knobs", {}), "knobs")
    try:
        return PlanRequest(
            query=query,
            k=_require_int(payload.get("k", 1), "k"),
            deadline_seconds=deadline,
            priority=_require_int(payload.get("priority", 0), "priority"),
            knobs=_wire_floats_back(knobs),
        )
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"plan request: {error}") from error


# ---------------------------------------------------------------------- #
# PlanResult / ServiceResponse
# ---------------------------------------------------------------------- #
def plan_result_to_json_dict(result: "PlanResult") -> dict:
    """JSON form of a :class:`~repro.planning.envelope.PlanResult`."""
    return {
        "plans": [plan_to_json_dict(plan) for plan in result.plans],
        "predicted_latencies": [
            _float_to_wire(value) for value in result.predicted_latencies
        ],
        "planning_seconds": _float_to_wire(result.planning_seconds),
        "states_expanded": result.states_expanded,
        "plans_scored": result.plans_scored,
        "planner_name": result.planner_name,
        "deadline_exceeded": bool(result.deadline_exceeded),
        "cacheable": bool(result.cacheable),
        "extra": {str(name): jsonable(value) for name, value in result.extra.items()},
    }


def plan_result_from_json_dict(payload: object) -> "PlanResult":
    """Decode :func:`plan_result_to_json_dict` output."""
    from repro.planning.envelope import PlanResult

    payload = _require_dict(payload, "plan result")
    plans = [
        plan_from_json_dict(entry)
        for entry in _require_list(payload.get("plans", []), "plans")
    ]
    predictions = [
        _float_from_wire(value, f"predicted_latencies[{index}]")
        for index, value in enumerate(
            _require_list(payload.get("predicted_latencies", []), "predicted_latencies")
        )
    ]
    try:
        return PlanResult(
            plans=plans,
            predicted_latencies=predictions,
            planning_seconds=_float_from_wire(
                payload.get("planning_seconds", 0.0), "planning_seconds"
            ),
            states_expanded=_require_int(
                payload.get("states_expanded", 0), "states_expanded"
            ),
            plans_scored=_require_int(payload.get("plans_scored", 0), "plans_scored"),
            planner_name=_require_str(payload.get("planner_name", ""), "planner_name"),
            deadline_exceeded=bool(payload.get("deadline_exceeded", False)),
            cacheable=bool(payload.get("cacheable", True)),
            extra=_wire_floats_back(dict(_require_dict(payload.get("extra", {}), "extra"))),
        )
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"plan result: {error}") from error


def service_response_to_json_dict(response: "ServiceResponse") -> dict:
    """JSON form of a service response: the result plus per-request stats."""
    body = plan_result_to_json_dict(response)
    body["query_name"] = response.query.name if response.query is not None else None
    stats = response.stats
    if stats is not None:
        body["stats"] = {
            "cache_hit": stats.cache_hit,
            "coalesced": stats.coalesced,
            "queue_wait_seconds": _float_to_wire(stats.queue_wait_seconds),
            "planning_seconds": _float_to_wire(stats.planning_seconds),
            "service_seconds": _float_to_wire(stats.service_seconds),
            "model_version": jsonable(stats.model_version),
            "planner_name": stats.planner_name,
            "deadline_exceeded": stats.deadline_exceeded,
            "priority": stats.priority,
        }
    else:
        body["stats"] = None
    return body


# ---------------------------------------------------------------------- #
# ServiceMetrics
# ---------------------------------------------------------------------- #
def service_metrics_to_json_dict(metrics: "ServiceMetrics") -> dict:
    """Faithful (non-flattened) JSON form of a metrics report."""
    from dataclasses import asdict

    body = {
        name: (_float_to_wire(value) if isinstance(value, float) else value)
        for name, value in asdict(metrics).items()
        if name not in ("cache", "scoring")
    }
    body["cache"] = asdict(metrics.cache)
    body["scoring"] = asdict(metrics.scoring)
    body["derived"] = {
        "hit_rate": _float_to_wire(metrics.hit_rate),
        "mean_queue_wait_seconds": _float_to_wire(metrics.mean_queue_wait_seconds),
        "mean_planning_seconds": _float_to_wire(metrics.mean_planning_seconds),
        "queries_per_second": _float_to_wire(metrics.queries_per_second),
    }
    return body


def service_metrics_from_json_dict(payload: object) -> "ServiceMetrics":
    """Decode :func:`service_metrics_to_json_dict` output."""
    from dataclasses import fields as dataclass_fields

    from repro.scoring.protocol import ScoringBridgeStats
    from repro.service.cache import CacheStats
    from repro.service.metrics import ServiceMetrics

    payload = _require_dict(payload, "service metrics")

    def load(cls, body: object, context: str):
        body = _require_dict(body, context)
        kwargs = {}
        for field_info in dataclass_fields(cls):
            if field_info.name in ("cache", "scoring"):
                continue
            if field_info.name in body:
                value = body[field_info.name]
                if field_info.type in ("float", float):
                    value = _float_from_wire(value, f"{context}.{field_info.name}")
                kwargs[field_info.name] = value
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as error:
            raise WireFormatError(f"{context}: {error}") from error

    metrics = load(ServiceMetrics, payload, "service metrics")
    metrics.cache = load(CacheStats, payload.get("cache", {}), "service metrics.cache")
    metrics.scoring = load(
        ScoringBridgeStats, payload.get("scoring", {}), "service metrics.scoring"
    )
    # JSON has no tuples; restore the per-worker gauge sequences faithfully.
    metrics.scoring.worker_queue_depths = tuple(metrics.scoring.worker_queue_depths)
    metrics.scoring.worker_inflight = tuple(metrics.scoring.worker_inflight)
    return metrics


# ---------------------------------------------------------------------- #
# PromotionDecision
# ---------------------------------------------------------------------- #
def promotion_decision_to_json_dict(decision: "PromotionDecision") -> dict:
    """JSON form of a shadow-gate (or live-traffic) promotion decision."""
    return {
        "candidate_version": decision.candidate_version,
        "serving_version": decision.serving_version,
        "promoted": decision.promoted,
        "reason": decision.reason,
        "probes": [
            {
                "query_name": probe.query_name,
                "serving_cost": _float_to_wire(probe.serving_cost),
                "candidate_cost": _float_to_wire(probe.candidate_cost),
                "regression": _float_to_wire(probe.regression),
            }
            for probe in decision.probes
        ],
        "max_regression": _float_to_wire(decision.max_regression),
        "regression_threshold": _float_to_wire(decision.regression_threshold),
        "total_regression": _float_to_wire(decision.total_regression),
        "total_threshold": _float_to_wire(decision.total_threshold),
        "created_at": _float_to_wire(decision.created_at),
    }


def promotion_decision_from_json_dict(payload: object) -> "PromotionDecision":
    """Decode :func:`promotion_decision_to_json_dict` output."""
    from repro.lifecycle.shadow import ProbeResult, PromotionDecision

    payload = _require_dict(payload, "promotion decision")
    probes = []
    for index, entry in enumerate(_require_list(payload.get("probes", []), "probes")):
        entry = _require_dict(entry, f"probes[{index}]")
        probes.append(
            ProbeResult(
                query_name=_require_str(
                    entry.get("query_name"), f"probes[{index}].query_name"
                ),
                serving_cost=_float_from_wire(
                    entry.get("serving_cost"), f"probes[{index}].serving_cost"
                ),
                candidate_cost=_float_from_wire(
                    entry.get("candidate_cost"), f"probes[{index}].candidate_cost"
                ),
                regression=_float_from_wire(
                    entry.get("regression"), f"probes[{index}].regression"
                ),
            )
        )
    candidate_version = payload.get("candidate_version")
    serving_version = payload.get("serving_version")
    if candidate_version is not None:
        candidate_version = _require_int(candidate_version, "candidate_version")
    if serving_version is not None:
        serving_version = _require_int(serving_version, "serving_version")
    try:
        return PromotionDecision(
            candidate_version=candidate_version,
            serving_version=serving_version,
            promoted=bool(payload.get("promoted", False)),
            reason=_require_str(payload.get("reason", ""), "reason"),
            probes=probes,
            max_regression=_float_from_wire(
                payload.get("max_regression", 0.0), "max_regression"
            ),
            regression_threshold=_float_from_wire(
                payload.get("regression_threshold", 0.0), "regression_threshold"
            ),
            total_regression=_float_from_wire(
                payload.get("total_regression", 0.0), "total_regression"
            ),
            total_threshold=_float_from_wire(
                payload.get("total_threshold", 0.0), "total_threshold"
            ),
            created_at=_float_from_wire(payload.get("created_at", 0.0), "created_at"),
        )
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"promotion decision: {error}") from error
