"""The serving gateway: an HTTP front door over the in-process stack.

:class:`PlanningServer` turns a :class:`~repro.service.service.PlannerService`
(plus, optionally, a :class:`~repro.lifecycle.registry.ModelRegistry`, a
:class:`~repro.lifecycle.manager.ModelLifecycle` and a
:class:`~repro.server.shadow_traffic.TrafficShadower`) into a network
service — stdlib only (``http.server`` + ``json``), no new dependencies.

Endpoints:

- ``POST /v1/plan`` — one planning request (wire-encoded
  :class:`~repro.planning.envelope.PlanRequest`; ``query`` structural or a
  workload name; optional ``planner`` routes to any registered planner, each
  served through its own cache-aware :class:`PlannerService`).
- ``POST /v1/plan_many`` — a batch, planned concurrently, order preserved.
- ``GET /v1/metrics`` — per-planner :class:`ServiceMetrics`, gateway HTTP
  counters, and live shadow-scoring stats.
- ``GET /v1/models`` — the registry chain: retained versions, serving
  history, snapshot provenance, and the full promotion-decision audit trail.
- ``POST /v1/models/promote`` / ``POST /v1/models/rollback`` — move the
  serving pointer (hot swap + registry bookkeeping); promotions arm the
  traffic shadower so live traffic guards the new version.
- ``GET /healthz`` — liveness plus the serving version.
- ``GET /metrics`` — Prometheus text exposition of the unified telemetry
  registry (service, scoring, cache, shadow, sharding, experience).
- ``GET /v1/traces`` — the recent-request trace ring and the slow-request
  log (span trees across threads, scorer processes and the shared cache).
- ``GET /v1/traces/<trace_id>`` — resolve one trace id (from a JSON log
  line or alert annotation) to its full span tree.
- ``GET /v1/metrics/stream`` — server-sent events: periodic metric samples
  plus lifecycle events (promotions, rollbacks, scorer respawns) and
  ``event: alert`` frames as SLO alerts fire and resolve.
- ``GET /v1/profile`` — merged continuous-profiling flamegraph (this
  process's sampler plus every scorer process's).
- ``GET /v1/alerts`` — the watchtower's SLO burn-rate alert state
  (pending/firing/recently-resolved, objectives, windows).

Boot-time restore: given a registry (typically
``ModelRegistry.load_persisted(persist_dir)``), the gateway swaps the
persisted serving snapshot into the service before taking traffic, so a
restart resumes the last promoted model instead of whatever network the
process happened to construct.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.lifecycle.snapshot import LifecycleError
from repro.model.value_network import StateDictMismatchError
from repro.planning.envelope import AdmissionError, PlanRequest, UnknownPlannerError
from repro.server.handlers import GatewayHTTPServer, GatewayRequestHandler
from repro.server.wire import WireFormatError, plan_request_from_json_dict
from repro.service.service import PlannerService, ServiceResponse
from repro.sql.query import Query
from repro.telemetry.alerts import AlertManager
from repro.telemetry.events import emit_event, get_event_bus
from repro.telemetry.profiling import (
    flamegraph_from_profile,
    get_profiler,
    merge_profiles,
    start_profiler,
    stop_profiler,
)
from repro.telemetry.publish import GatewayTelemetry
from repro.telemetry.trace import get_tracer, span as trace_span

if TYPE_CHECKING:
    from repro.experience.loop import OnlineTrainerLoop
    from repro.lifecycle.manager import ModelLifecycle
    from repro.lifecycle.registry import ModelRegistry
    from repro.planning.registry import PlannerRegistry
    from repro.server.shadow_traffic import TrafficShadower

#: The ``planner`` field value addressing the gateway's primary service.
DEFAULT_PLANNER = "default"

#: Every routable path; unknown paths share one metrics bucket so a scanner
#: probing random URLs cannot grow the gateway counters without bound.
KNOWN_PATHS = frozenset(
    {
        "/healthz",
        "/v1/plan",
        "/v1/plan_many",
        "/v1/metrics",
        "/v1/models",
        "/v1/models/promote",
        "/v1/models/rollback",
        "/v1/experience",
        "/metrics",
        "/v1/traces",
        "/v1/traces/<trace_id>",
        "/v1/metrics/stream",
        "/v1/profile",
        "/v1/alerts",
    }
)


class PlanningServer:
    """HTTP front door for the serving stack.

    Args:
        service: The primary (usually beam-backend) planner service; the
            gateway never closes it.
        registry: Optional model registry backing the ops endpoints
            (``/v1/models``, promote/rollback) and boot-time restore.
        lifecycle: Optional lifecycle manager; when present, rollbacks route
            through it (cache warming included).
        shadower: Optional live-traffic shadower; ``/v1/plan`` traffic feeds
            it and promotions arm it.
        experience: Optional online-learning loop
            (:class:`~repro.experience.loop.OnlineTrainerLoop`); every served
            plan is recorded into its sink off the hot path, and its metrics
            are exposed at ``GET /v1/experience`` and inside ``/v1/metrics``.
        planner_registry: Optional planner registry; requests naming a
            ``planner`` are served through a per-planner
            :class:`PlannerService` built lazily over these entries (owned —
            and closed — by the gateway).
        queries: Optional named workload; requests may then reference queries
            by name instead of shipping their structure.
        featurizer: Featuriser for restoring snapshots on promote/rollback
            (defaults to the serving network's).
        host: Bind address (loopback by default).
        port: Bind port (0 → ephemeral; read :attr:`port` after
            :meth:`start`).
        restore_serving: Swap the registry's persisted serving snapshot into
            the service at construction (no-op without a registry or a
            promoted version).
        verbose: Log one line per HTTP request to stderr.
        worker_id: Shard slot when this gateway runs as one worker of a
            :class:`~repro.server.sharding.ShardedGateway`; surfaces in
            ``/healthz`` bodies and as an ``X-Repro-Worker`` response header
            on every reply.  None (the default) for a standalone gateway.
        alerts: The watchtower.  ``True`` (default) builds an
            :class:`~repro.telemetry.alerts.AlertManager` over the stock SLO
            objectives; pass a pre-built manager to control windows and
            thresholds (tests), or ``False``/``None`` to disable alerting.
            Firing alerts pause online-trainer promotions and tighten the
            traffic shadower's bounds; recovery restores both.
        profile: Run the continuous sampling profiler in this process while
            the gateway is serving (``GET /v1/profile``); the
            ``REPRO_PROFILE=0`` environment kill switch overrides.
    """

    def __init__(
        self,
        service: PlannerService,
        *,
        registry: "ModelRegistry | None" = None,
        lifecycle: "ModelLifecycle | None" = None,
        shadower: "TrafficShadower | None" = None,
        experience: "OnlineTrainerLoop | None" = None,
        planner_registry: "PlannerRegistry | None" = None,
        queries: Iterable[Query] | None = None,
        featurizer=None,
        host: str = "127.0.0.1",
        port: int = 0,
        restore_serving: bool = True,
        verbose: bool = False,
        worker_id: int | None = None,
        alerts: "AlertManager | bool | None" = True,
        profile: bool = True,
    ):
        self.service = service
        self.worker_id = worker_id
        self.registry = registry
        self.lifecycle = lifecycle
        self.shadower = shadower
        self.experience = experience
        #: Sharded-gateway ops channel (set by the worker bootstrap); promote
        #: and rollback publish through it so sibling workers swap too.
        self.ops_channel = None
        self.planner_registry = planner_registry
        self.verbose = verbose
        self._featurizer = featurizer
        self._host = host
        self._requested_port = port
        self._queries: dict[str, Query] = {
            query.name: query for query in (queries or [])
        }
        self._extra_services: dict[str, PlannerService] = {}
        self._extra_lock = threading.Lock()
        self._http_lock = threading.Lock()
        self._http_requests: dict[str, int] = {}
        self._http_status: dict[int, int] = {}
        self._httpd: GatewayHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._closed = False
        #: Per-gateway telemetry registry (parallel test gateways in one
        #: process must not share counters) fed at scrape time.
        self.telemetry = GatewayTelemetry()
        #: The process lifecycle bus — shared, so events emitted deep in the
        #: stack (shadow rollbacks, scorer respawns) reach this gateway's SSE
        #: streams without any wiring.
        self.event_bus = get_event_bus()
        #: Set on close(); open SSE streams drain out within one poll slice.
        self.stopping_streams = threading.Event()
        #: The watchtower: SLO burn-rate alerting + protective actions.
        self.alerts: "AlertManager | None"
        if alerts is True:
            self.alerts = AlertManager()
        elif alerts:
            self.alerts = alerts
        else:
            self.alerts = None
        if self.alerts is not None:
            if self.alerts.snapshot_fn is None:
                self.alerts.snapshot_fn = self.telemetry_snapshot
            self.alerts.add_listener(self._on_alert_change)
        self._profile = profile
        self._profiler_acquired = False
        self.restored_serving_version: int | None = None
        if restore_serving:
            self._restore_serving()
        # A lifecycle without a live monitor gets this gateway's shadower, so
        # gate-approved promotions arm the live-traffic guard too — and the
        # shadower's automatic rollbacks route through the lifecycle (cache
        # rewarming included) rather than raw registry/service calls.
        if lifecycle is not None and shadower is not None:
            if getattr(lifecycle, "live_monitor", None) is None:
                lifecycle.attach_live_monitor(shadower)
            if shadower.lifecycle is None:
                shadower.lifecycle = lifecycle

    # ------------------------------------------------------------------ #
    # Boot-time restore
    # ------------------------------------------------------------------ #
    def _restore_serving(self) -> None:
        """Resume the registry's persisted serving model, if there is one."""
        if self.registry is None or self.registry.serving_version is None:
            return
        if self.service.serving_network() is None:
            return  # protocol-mode service: nothing to swap
        snapshot = self.registry.serving()
        network = snapshot.restore(self._resolve_featurizer())
        self.service.swap_network(network)
        self.restored_serving_version = snapshot.version

    def _resolve_featurizer(self):
        if self._featurizer is not None:
            return self._featurizer
        network = self.service.serving_network()
        if network is None:
            raise LifecycleError(
                "gateway has no featurizer: pass one explicitly, or front a "
                "service with a serving network"
            )
        return network.featurizer

    # ------------------------------------------------------------------ #
    # Server lifecycle
    # ------------------------------------------------------------------ #
    def start(
        self, *, reuse_port: bool = False, listen_socket=None
    ) -> "PlanningServer":
        """Bind the listening socket and serve on a background thread.

        Args:
            reuse_port: Bind with ``SO_REUSEPORT`` so sibling worker
                processes can share the port (sharded-gateway mode).
            listen_socket: Adopt this already-listening socket instead of
                binding — the pre-fork inherited-fd fallback on platforms
                without ``SO_REUSEPORT``.
        """
        if self._closed:
            raise RuntimeError("planning server is closed")
        if self._httpd is not None:
            return self
        bound_handler = type(
            "BoundGatewayHandler", (GatewayRequestHandler,), {"gateway": self}
        )
        self._httpd = GatewayHTTPServer(
            (self._host, self._requested_port),
            bound_handler,
            reuse_port=reuse_port,
            listen_socket=listen_socket,
        )
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="gateway-http",
            daemon=True,
        )
        self._serve_thread.start()
        if self._profile and not self._profiler_acquired:
            label = (
                "gateway"
                if self.worker_id is None
                else f"gateway-w{self.worker_id}"
            )
            if start_profiler(process=label) is not None:
                self._profiler_acquired = True
        if self.alerts is not None:
            self.alerts.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("planning server is not started")
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self._host}:{self.port}"

    def close(self) -> None:
        """Stop the listener and the gateway-owned per-planner services.

        The primary service, registry, lifecycle and shadower belong to the
        caller and are left running.
        """
        if self._closed:
            return
        self._closed = True
        self.stopping_streams.set()
        if self.alerts is not None:
            self.alerts.stop()
        if self._profiler_acquired:
            self._profiler_acquired = False
            stop_profiler()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=2.0)
        with self._extra_lock:
            extra = list(self._extra_services.values())
            self._extra_services.clear()
        for extra_service in extra:
            extra_service.close()

    def __enter__(self) -> "PlanningServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Routing support
    # ------------------------------------------------------------------ #
    def count_http(self, path: str, status: int) -> None:
        """Fold one handled HTTP exchange into the gateway counters."""
        if path not in KNOWN_PATHS:
            path = "<unknown>"
        with self._http_lock:
            self._http_requests[path] = self._http_requests.get(path, 0) + 1
            self._http_status[status] = self._http_status.get(status, 0) + 1

    def planner_services(self) -> "dict[str, PlannerService]":
        """Every service this gateway answers through, keyed by planner name."""
        with self._extra_lock:
            extra = dict(self._extra_services)
        return {DEFAULT_PLANNER: self.service, **extra}

    def http_counters(self) -> "tuple[dict[str, int], dict[int, int]]":
        """``(requests_by_endpoint, responses_by_status)`` snapshot copies."""
        with self._http_lock:
            return dict(self._http_requests), dict(self._http_status)

    def _resolve_query(self, name: str) -> Query:
        return self._queries[name]  # KeyError → WireFormatError upstream

    def _service_for(self, planner: object) -> PlannerService:
        """The service answering for ``planner`` (the primary one by default).

        Named planners are served through gateway-owned services built
        lazily over the planner registry — same cache/dedup/metrics path as
        the primary, so ``/v1/metrics`` reports them uniformly.
        """
        if planner is None or planner == DEFAULT_PLANNER:
            return self.service
        if not isinstance(planner, str):
            raise WireFormatError(f"planner: expected a string, got {planner!r}")
        if self.planner_registry is None:
            raise UnknownPlannerError(
                f"gateway has no planner registry; cannot route to {planner!r}"
            )
        with self._extra_lock:
            if self._closed:
                raise RuntimeError("planning server is closed")
            cached = self._extra_services.get(planner)
            if cached is not None:
                return cached
            backend = self.planner_registry.get(planner)  # UnknownPlannerError
            service = PlannerService(
                planner=backend,
                max_workers=2,
                cache_capacity=1024,
                max_pending=self.service.max_pending,
            )
            self._extra_services[planner] = service
            return service

    @staticmethod
    def _admission_status(error: AdmissionError) -> int:
        if error.reason == "over_capacity":
            return 429
        if error.reason == "deadline_expired":
            return 504
        return 503

    def _observe(self, request: PlanRequest) -> None:
        """Feed one foreground request to the shadower (never raises)."""
        if self.shadower is None:
            return
        try:
            self.shadower.observe(request.query)
        except Exception:  # noqa: BLE001 - shadow path must not fail traffic
            pass

    def _record_experience(
        self, request: PlanRequest, response: ServiceResponse
    ) -> None:
        """Feed one served answer to the experience sink (never raises).

        Every returned plan becomes one tuple — the chosen plan plus the
        runners-up, each with its own predicted cost — because the online
        loop learns ranking structure from the alternatives the model itself
        surfaced, not just from its single favourite.
        """
        if self.experience is None or not response.plans:
            return
        try:
            with trace_span("experience.record", plans=len(response.plans)):
                model_version = (
                    response.stats.model_version
                    if response.stats is not None
                    else None
                )
                for plan, predicted in zip(
                    response.plans, response.predicted_latencies
                ):
                    self.experience.observe(
                        request.query,
                        plan,
                        predicted,
                        planner_id=response.planner_name or DEFAULT_PLANNER,
                        model_version=model_version,
                    )
        except Exception:  # noqa: BLE001 - learning must not fail traffic
            pass

    @staticmethod
    def _response_status(response: ServiceResponse) -> int:
        """504 for a budget-drained empty answer, 200 otherwise."""
        return 504 if (response.deadline_exceeded and not response.plans) else 200

    def _retire_cached_version(self, network) -> None:
        """Free a displaced model's cached plans (both tiers, best effort).

        Version-keyed entries already stop matching once the swap lands (the
        store path re-checks the serving version, so in-flight requests
        pinned to the old network cannot repollute); invalidation just
        releases the memory — locally and, through
        :class:`~repro.service.cache.TieredPlanCache`, across every sharded
        worker at once.
        """
        if network is None:
            return
        invalidate = getattr(self.service.cache, "invalidate_version", None)
        if invalidate is None:
            return
        try:
            invalidate(network.version_key())
        except Exception:  # noqa: BLE001 - bookkeeping must not fail the swap
            pass

    # ------------------------------------------------------------------ #
    # Routes: planning
    # ------------------------------------------------------------------ #
    def handle_plan(self, payload: object) -> tuple[int, dict]:
        """``POST /v1/plan``."""
        try:
            if not isinstance(payload, Mapping):
                raise WireFormatError("expected a JSON object")
            service = self._service_for(payload.get("planner"))
            request = plan_request_from_json_dict(
                payload, query_resolver=self._resolve_query
            )
        except WireFormatError as error:
            return 400, {"error": str(error), "kind": "bad_request"}
        except UnknownPlannerError as error:
            return 404, {"error": str(error), "kind": "unknown_planner"}
        try:
            response = service.plan(request)
        except AdmissionError as error:
            return self._admission_status(error), {
                "error": str(error),
                "kind": "admission",
                "reason": error.reason,
            }
        except RuntimeError as error:
            return 503, {"error": str(error), "kind": "unavailable"}
        if service is self.service:
            self._observe(request)
            self._record_experience(request, response)
        return self._response_status(response), response.to_json_dict()

    def handle_plan_many(self, payload: object) -> tuple[int, dict]:
        """``POST /v1/plan_many``."""
        try:
            if not isinstance(payload, Mapping):
                raise WireFormatError("expected a JSON object")
            entries = payload.get("requests")
            if not isinstance(entries, list):
                raise WireFormatError("requests: expected a JSON array")
            service = self._service_for(payload.get("planner"))
            requests = [
                plan_request_from_json_dict(entry, query_resolver=self._resolve_query)
                for entry in entries
            ]
        except WireFormatError as error:
            return 400, {"error": str(error), "kind": "bad_request"}
        except UnknownPlannerError as error:
            return 404, {"error": str(error), "kind": "unknown_planner"}
        try:
            responses = service.plan_many(requests)
        except AdmissionError as error:
            return self._admission_status(error), {
                "error": str(error),
                "kind": "admission",
                "reason": error.reason,
            }
        except RuntimeError as error:
            return 503, {"error": str(error), "kind": "unavailable"}
        if service is self.service:
            for request, response in zip(requests, responses):
                self._observe(request)
                self._record_experience(request, response)
        return 200, {"results": [response.to_json_dict() for response in responses]}

    # ------------------------------------------------------------------ #
    # Routes: ops
    # ------------------------------------------------------------------ #
    def handle_metrics(self) -> tuple[int, dict]:
        """``GET /v1/metrics``."""
        with self._extra_lock:
            extra = dict(self._extra_services)
        planners = {DEFAULT_PLANNER: self.service.metrics().to_json_dict()}
        for name, service in extra.items():
            planners[name] = service.metrics().to_json_dict()
        with self._http_lock:
            gateway = {
                "requests_by_endpoint": dict(self._http_requests),
                "responses_by_status": {
                    str(status): count for status, count in self._http_status.items()
                },
            }
        shadow = self.shadower.stats().to_json_dict() if self.shadower else None
        shared_stats = getattr(self.service.cache, "shared_stats", None)
        shared_cache = shared_stats() if callable(shared_stats) else None
        experience = (
            self.experience.metrics().to_json_dict() if self.experience else None
        )
        return 200, {
            "planners": planners,
            "gateway": gateway,
            "shadow": shadow,
            "shared_cache": shared_cache,
            "experience": experience,
            "worker_id": self.worker_id,
        }

    def telemetry_snapshot(self) -> dict:
        """The gateway's metrics-registry snapshot, freshly published.

        The dict sharded workers push to the supervisor's aggregation sink —
        mergeable with :func:`repro.telemetry.metrics.merge_snapshots`.
        """
        return self.telemetry.snapshot(self)

    def prometheus_text(self) -> str:
        """``GET /metrics`` body: Prometheus text over the fresh snapshot."""
        return self.telemetry.render(self)

    def handle_traces(self) -> tuple[int, dict]:
        """``GET /v1/traces`` — recent traces plus the slow-request log."""
        payload = get_tracer().to_json_dict()
        payload["worker_id"] = self.worker_id
        return 200, payload

    def handle_trace_lookup(self, trace_id: str) -> tuple[int, dict]:
        """``GET /v1/traces/<trace_id>`` — resolve one trace id directly."""
        trace = get_tracer().find(trace_id)
        if trace is None:
            return 404, {
                "error": f"trace {trace_id!r} not found (evicted or never recorded)",
                "kind": "unknown_trace",
            }
        return 200, {"trace": trace.to_json_dict(), "worker_id": self.worker_id}

    # ------------------------------------------------------------------ #
    # Routes: the watchtower
    # ------------------------------------------------------------------ #
    def profile_snapshot(self) -> dict:
        """This worker's merged profile: own sampler plus scorer processes.

        The dict sharded workers attach to their telemetry push frames, and
        the single-process body of ``GET /v1/profile``.
        """
        profiles: list[dict] = []
        profiler = get_profiler()
        if profiler is not None:
            profiles.append(profiler.snapshot())
        for service in self.planner_services().values():
            scoring_profiles = getattr(service, "scoring_profiles", None)
            if callable(scoring_profiles):
                profiles.extend(scoring_profiles())
        return merge_profiles(profiles)

    def handle_profile(self) -> tuple[int, dict]:
        """``GET /v1/profile`` — flamegraph-ready merged profile JSON."""
        profile = self.profile_snapshot()
        return 200, {
            "worker_id": self.worker_id,
            "profile": profile,
            "flamegraph": flamegraph_from_profile(profile),
        }

    def handle_alerts(self) -> tuple[int, dict]:
        """``GET /v1/alerts`` — the watchtower's alert state."""
        if self.alerts is None:
            return 503, {
                "error": "gateway has no alert manager (constructed with alerts=False)",
                "kind": "unavailable",
            }
        payload = self.alerts.to_json_dict()
        payload["worker_id"] = self.worker_id
        payload["health_score"] = self.health_score()
        return 200, payload

    def health_score(self) -> float:
        """Composite health in [0, 1]: 1.0 with no active alerts, each
        firing alert costs 0.4 and each pending alert 0.1 (floored at 0)."""
        if self.alerts is None:
            return 1.0
        firing = len(self.alerts.firing())
        pending = len(self.alerts.pending())
        return max(0.0, 1.0 - 0.4 * firing - 0.1 * pending)

    def _on_alert_change(self, manager: "AlertManager") -> None:
        """Protective actions: runs after any alert state transition.

        While any alert is firing, autonomous promotions are paused (the
        loop keeps learning, it just cannot ship) and the traffic
        shadower's regression bounds tighten; full recovery reverses both.
        """
        firing = manager.firing()
        burning = bool(firing)
        if self.experience is not None:
            try:
                self.experience.set_promotions_paused(
                    burning, reason=",".join(firing) if burning else None
                )
            except Exception:  # noqa: BLE001 - actions must not stop alerting
                pass
        if self.shadower is not None:
            try:
                self.shadower.set_degraded(burning)
            except Exception:  # noqa: BLE001 - actions must not stop alerting
                pass

    def stream_sample(self) -> dict:
        """One ``event: metrics`` SSE sample: headline gauges, cheap to emit."""
        metrics = self.service.metrics()
        with self._http_lock:
            http_requests = sum(self._http_requests.values())
        return {
            "requests": metrics.requests,
            "cache_hit_rate": round(metrics.hit_rate, 6),
            "pending_requests": self.service.pending_requests,
            "mean_planning_seconds": round(metrics.mean_planning_seconds, 6),
            "http_requests": http_requests,
            "serving_version": (
                self.registry.serving_version if self.registry is not None else None
            ),
            "shadow_armed": self.shadower.armed if self.shadower else False,
            "health_score": self.health_score(),
            "alerts_firing": len(self.alerts.firing()) if self.alerts else 0,
            "worker_id": self.worker_id,
        }

    def handle_experience(self) -> tuple[int, dict]:
        """``GET /v1/experience`` — the online-learning loop's own block."""
        if self.experience is None:
            return 503, {
                "error": "gateway has no experience subsystem (start with --learn)",
                "kind": "unavailable",
            }
        return 200, self.experience.metrics().to_json_dict()

    def handle_models(self) -> tuple[int, dict]:
        """``GET /v1/models``."""
        if self.registry is None:
            return 503, {"error": "gateway has no model registry", "kind": "unavailable"}
        registry = self.registry
        # One consistent listing: per-version get() calls would race
        # concurrent retention eviction into a 500.
        snapshots = [
            {
                "version": snapshot.version,
                "source": snapshot.source,
                "parent_version": snapshot.parent_version,
                "tag": snapshot.tag,
                "created_at": snapshot.created_at,
            }
            for snapshot in registry.snapshots()
        ]
        shadow = self.shadower.stats().to_json_dict() if self.shadower else None
        return 200, {
            "serving_version": registry.serving_version,
            "versions": registry.versions(),
            "serving_history": registry.serving_history(),
            "snapshots": snapshots,
            "decisions": [decision.to_json_dict() for decision in registry.decisions()],
            "shadow": shadow,
        }

    def handle_promote(
        self, payload: object, *, propagate: bool = True
    ) -> tuple[int, dict]:
        """``POST /v1/models/promote`` — hot-swap a registered version in.

        This is the ops override: it bypasses the probe-workload gate (the
        lifecycle's ``evaluate_and_apply`` owns that path) but never the
        live-traffic guard — the shadower is armed with the displaced
        version, so a bad promotion is rolled back by real requests.

        Under the sharded gateway a successful promote is re-broadcast to
        every sibling worker through the supervisor's ops channel (unless
        ``propagate`` is False — the flag replayed broadcasts arrive with,
        so an op is applied exactly once per worker and never echoes).
        """
        if self.registry is None:
            return 503, {"error": "gateway has no model registry", "kind": "unavailable"}
        if not isinstance(payload, Mapping):
            return 400, {"error": "expected {'version': <int>}", "kind": "bad_request"}
        version = payload.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            return 400, {"error": "version: expected an integer", "kind": "bad_request"}
        try:
            snapshot = self.registry.get(version)
        except LifecycleError as error:
            return 404, {"error": str(error), "kind": "unknown_version"}
        previous = self.registry.serving_version
        if previous == version:
            # Already serving here, but siblings may not be: still broadcast.
            if propagate:
                self._publish_op({"op": "promote", "version": version})
            return 200, {"serving_version": version, "previous_serving_version": previous}
        displaced = self.service.serving_network()
        try:
            network = snapshot.restore(self._resolve_featurizer())
            self.service.swap_network(network)
        except (StateDictMismatchError, LifecycleError) as error:
            return 409, {"error": str(error), "kind": "conflict"}
        except RuntimeError as error:
            return 503, {"error": str(error), "kind": "unavailable"}
        try:
            self.registry.promote(version)
        except LifecycleError as error:
            # Retention evicted the version between get() and promote(): the
            # swap already happened, so restore the registry's view of
            # serving before failing — the pointer and the live network must
            # never diverge.
            try:
                self.service.swap_network(
                    self.registry.serving().restore(self._resolve_featurizer())
                )
            except Exception:  # noqa: BLE001 - best effort; report the cause
                pass
            return 409, {"error": str(error), "kind": "conflict"}
        self._retire_cached_version(displaced)
        emit_event(
            "promotion",
            source="ops",
            version=version,
            previous_version=previous,
            worker_id=self.worker_id,
        )
        if propagate:
            self._publish_op({"op": "promote", "version": version})
        if self.shadower is not None:
            try:
                self.shadower.watch(version, previous)
            except Exception as error:  # noqa: BLE001 - promotion already landed
                return 200, {
                    "serving_version": version,
                    "previous_serving_version": previous,
                    "shadow_armed": False,
                    "shadow_error": str(error),
                }
        return 200, {
            "serving_version": version,
            "previous_serving_version": previous,
            "shadow_armed": self.shadower.armed if self.shadower else False,
        }

    def handle_rollback(self, *, propagate: bool = True) -> tuple[int, dict]:
        """``POST /v1/models/rollback`` — revert to the previous version.

        Like :meth:`handle_promote`, a successful rollback is re-broadcast
        to sibling workers through the ops channel when sharded.
        """
        if self.registry is None:
            return 503, {"error": "gateway has no model registry", "kind": "unavailable"}
        rolled_from = self.registry.serving_version
        displaced = self.service.serving_network()
        try:
            if self.lifecycle is not None:
                snapshot = self.lifecycle.rollback()
            else:
                snapshot = self.registry.rollback()
                try:
                    network = snapshot.restore(self._resolve_featurizer())
                    self.service.swap_network(network)
                except Exception:
                    # The swap failed: the registry pointer must not drift
                    # away from what is actually serving.
                    self.registry.promote(rolled_from)
                    raise
        except (StateDictMismatchError, LifecycleError) as error:
            return 409, {"error": str(error), "kind": "conflict"}
        except RuntimeError as error:
            return 503, {"error": str(error), "kind": "unavailable"}
        self._retire_cached_version(displaced)
        emit_event(
            "rollback",
            source="ops",
            version=snapshot.version,
            rolled_back_from=rolled_from,
            worker_id=self.worker_id,
        )
        if propagate:
            self._publish_op({"op": "rollback"})
        if self.shadower is not None:
            # Idempotent: the lifecycle path may already have disarmed its
            # attached monitor, but this gateway's shadower must never stay
            # armed watching a pair an explicit rollback just retired.
            self.shadower.disarm()
        return 200, {
            "serving_version": snapshot.version,
            "rolled_back_from": rolled_from,
        }

    # ------------------------------------------------------------------ #
    # Sharded ops coherence
    # ------------------------------------------------------------------ #
    def _publish_op(self, message: dict) -> None:
        """Best-effort broadcast of an applied ops action to sibling workers."""
        channel = self.ops_channel
        if channel is None:
            return
        try:
            channel.publish(message)
        except Exception:  # noqa: BLE001 - coherence is best-effort, never fatal
            pass

    def apply_ops_message(self, message: object) -> None:
        """Apply a promote/rollback broadcast received from a sibling worker.

        Runs on the ops-channel listener thread; applies the action locally
        with ``propagate=False`` so it is never re-broadcast (the supervisor
        already fans each op out to every *other* worker exactly once).
        Failures are swallowed — a worker that cannot apply an op (e.g. the
        version was evicted locally) keeps serving what it has.
        """
        if not isinstance(message, Mapping):
            return
        op = message.get("op")
        try:
            if op == "promote":
                self.handle_promote(
                    {"version": message.get("version")}, propagate=False
                )
            elif op == "rollback":
                self.handle_rollback(propagate=False)
        except Exception:  # noqa: BLE001 - a bad broadcast must not kill the listener
            pass

    def handle_health(self) -> tuple[int, dict]:
        """``GET /healthz`` — liveness plus the composite health score.

        Always 200 while the process serves (liveness); the body's
        ``health_score``/``status`` carry the watchtower's judgment, which
        the sharded supervisor aggregates fleet-wide (min over workers).
        """
        planners = [DEFAULT_PLANNER]
        if self.planner_registry is not None:
            planners += sorted(self.planner_registry.available())
        score = self.health_score()
        if score >= 0.8:
            status = "ok"
        elif score >= 0.4:
            status = "degraded"
        else:
            status = "unhealthy"
        return 200, {
            "status": status,
            "health_score": score,
            "alerts_firing": self.alerts.firing() if self.alerts else [],
            "alerts_pending": self.alerts.pending() if self.alerts else [],
            "worker_id": self.worker_id,
            "pending_requests": self.service.pending_requests,
            "serving_version": (
                self.registry.serving_version if self.registry is not None else None
            ),
            "shadow_armed": self.shadower.armed if self.shadower else False,
            "planners": planners,
        }
