"""Configuration of the Balsa agent.

Defaults follow the paper's settings (§4–§8.1): beam size 20, top-k 10,
timeout slack 2, timeout label 4096 s, on-policy updates, count-based safe
exploration, simulation bootstrapping from :math:`C_{out}`.  The additional
"small" preset scales the search and training knobs down so that full training
runs complete in seconds on CPU, which the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.model.value_network import ValueNetworkConfig


@dataclass
class BalsaConfig:
    """All knobs of a Balsa training run.

    Attributes:
        seed: Root seed (controls initialisation, shuffling and exploration).
        num_iterations: Real-execution training iterations.
        beam_size: Beam width ``b`` of the tree search.
        top_k: Number of complete plans collected per search (``k``).
        enumerate_scan_operators: Whether search actions also assign scan
            operators.
        exploration: ``"count"`` (safe exploration, default), ``"epsilon"``
            (ε-greedy random-plan injection) or ``"none"``.
        epsilon: Random-plan probability for ε-greedy exploration.
        use_timeouts: Enable safe execution via timeouts (§4.3).
        timeout_slack: Slack factor ``S`` applied to the best known max
            per-query runtime.
        timeout_label: Label (seconds) assigned to timed-out executions.
        use_simulation: Bootstrap from a simulator before real execution.
        simulator: ``"cout"`` (default), ``"expert"`` or ``"none"``.
        sim_skip_tables_above: Skip collection for queries with at least this
            many relations.
        sim_max_points_per_query: Cap on augmented simulation points per query.
        sim_max_epochs: Epoch budget for training V_sim.
        sim_learning_rate: Learning rate for V_sim training.
        on_policy: Update V_real on the latest iteration's data only (True) or
            retrain from scratch on all experience (False; Neo-style).
        update_epochs: Epochs per on-policy update.
        retrain_epochs: Epoch budget when retraining from scratch.
        learning_rate: Learning rate for real-execution updates.
        batch_size: Minibatch size for value-network training.
        network: Value-network architecture hyper-parameters.
        num_execution_nodes: Simulated execution-node pool size (wall-clock
            accounting only).
        eval_interval: Evaluate on the test set every this many iterations
            (0 disables periodic test evaluation).
        test_timeout: Safety latency cap used when executing test plans.
        planner_workers: Worker threads of the agent's planner service
            (1 keeps planning serial and bit-reproducible across runs).
        plan_cache_capacity: Entries in the cross-query plan cache fronting
            beam search (0 disables it).
        coalesce_scoring: Let concurrent searches share value-network forward
            passes through the threaded batching backend (only engaged when
            ``planner_workers > 1`` and ``scoring_backend`` is ``"auto"``).
        scoring_backend: Which :class:`~repro.scoring.protocol.ScoringBackend`
            the planner service scores through: ``"auto"`` (the historical
            mapping from ``coalesce_scoring``), ``"inproc"``, ``"threaded"``,
            or ``"process"`` (a pool of scorer processes loading published
            model snapshots — breaks the GIL bound on concurrent planning).
        background_training: Delegate value-network updates to the lifecycle
            subsystem's :class:`~repro.lifecycle.trainer.BackgroundTrainer`:
            iteration k+1's planning and execution overlap iteration k's
            fine-tune (the paper's pipelined setup), at the cost of the model
            lagging one iteration behind the serial schedule.  Every update
            is snapshotted into the agent's
            :class:`~repro.lifecycle.registry.ModelRegistry`.
        lifecycle_retention: Snapshots retained by the agent's model registry
            when ``background_training`` is on (0 keeps everything).
    """

    seed: int = 0
    num_iterations: int = 100

    # Plan search (§4.2).
    beam_size: int = 20
    top_k: int = 10
    enumerate_scan_operators: bool = True

    # Exploration (§5).
    exploration: str = "count"
    epsilon: float = 0.1

    # Safe execution (§4.3).
    use_timeouts: bool = True
    timeout_slack: float = 2.0
    timeout_label: float = 4096.0

    # Simulation bootstrapping (§3).
    use_simulation: bool = True
    simulator: str = "cout"
    sim_skip_tables_above: int = 12
    sim_max_points_per_query: int = 5000
    sim_max_epochs: int = 20
    sim_learning_rate: float = 1e-3

    # Value-network updates (§4.1).
    on_policy: bool = True
    update_epochs: int = 5
    retrain_epochs: int = 20
    learning_rate: float = 1e-3
    batch_size: int = 128
    network: ValueNetworkConfig = field(default_factory=ValueNetworkConfig)

    # Infrastructure (§7).
    num_execution_nodes: int = 3
    eval_interval: int = 10
    test_timeout: float = 600.0

    # Planner service (the serving layer fronting beam search).
    planner_workers: int = 1
    plan_cache_capacity: int = 4096
    coalesce_scoring: bool = True
    scoring_backend: str = "auto"

    # Model lifecycle (background fine-tuning with hot swap).
    background_training: bool = False
    lifecycle_retention: int = 16

    def with_seed(self, seed: int) -> "BalsaConfig":
        """A copy of the config with a different root seed (per-agent runs)."""
        return replace(self, seed=seed, network=replace(self.network, seed=seed))

    @classmethod
    def small(cls, seed: int = 0, num_iterations: int = 12) -> "BalsaConfig":
        """A scaled-down preset for tests and benchmarks (seconds, not hours)."""
        return cls(
            seed=seed,
            num_iterations=num_iterations,
            beam_size=5,
            top_k=3,
            enumerate_scan_operators=False,
            sim_max_points_per_query=600,
            sim_max_epochs=8,
            update_epochs=5,
            retrain_epochs=10,
            network=ValueNetworkConfig(
                query_hidden=32, query_embedding=16, tree_channels=(32, 16), head_hidden=16,
                seed=seed,
            ),
            num_execution_nodes=2,
            eval_interval=4,
        )

    @classmethod
    def paper(cls, seed: int = 0) -> "BalsaConfig":
        """The paper-faithful preset (500 iterations, b=20, k=10)."""
        return cls(seed=seed, num_iterations=500, planner_workers=4)
