"""Wall-clock timing helpers used by the training loops and benchmarks."""

from __future__ import annotations

import time


class Stopwatch:
    """A restartable stopwatch measuring elapsed wall-clock seconds.

    Example:
        >>> sw = Stopwatch()
        >>> sw.start()
        >>> _ = sw.stop()
        >>> sw.elapsed >= 0.0
        True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return total elapsed seconds."""
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the stopwatch."""
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def format_seconds(seconds: float) -> str:
    """Render a duration as a short human-readable string."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 120:
        return f"{int(minutes)}m{secs:04.1f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes)}m"
