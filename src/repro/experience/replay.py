"""The replay buffer: dedup, reservoir sampling, recency-weighted draws.

Live gateway traffic is wildly repetitive — the same workload queries arrive
over and over, and under a fixed model the planner keeps choosing the same
plans.  Feeding that stream to the trainer raw would overfit on whatever the
last burst happened to contain.  :class:`ReplayBuffer` turns the stream into
a training set:

- **fingerprint-level dedup**: one entry per ``(query fingerprint, plan
  fingerprint)`` pair; a repeat refreshes the entry's recency and
  executed-cost observation instead of growing the buffer;
- **reservoir sampling under a cap**: once the buffer is full, a *new*
  fingerprint replaces a uniformly random resident with probability
  ``capacity / tuples_seen`` (classic Algorithm R), so the buffer stays an
  unbiased sample of everything ever observed while bounding memory;
- **recency-weighted draws**: :meth:`sample` weights entries by
  ``0.5 ** (age / half_life)`` where age is measured in insertions, so
  training leans toward what the workload looks like *now* without ever
  fully forgetting the tail (Balsa keeps its whole ``D_real`` for label
  correction; the serving analogue cannot, so it biases instead);
- **JSONL persistence**: :meth:`save` / :meth:`load` round-trip the buffer
  through one JSON object per line (queries and plans via the
  :mod:`repro.server.wire` codecs), so experience survives gateway restarts.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.plans.nodes import PlanNode
from repro.sql.query import Query


@dataclass(frozen=True)
class ExperienceTuple:
    """One observed serving decision, ready to become training experience.

    Attributes:
        query: The planned query.
        plan: The plan the gateway served for it.
        predicted_cost: What the serving model predicted for the plan.
        executed_cost: The simulated-executed cost under the shared yardstick
            (None until the consumer computes it — the request path never
            runs the yardstick).
        planner_id: Registry identity of the planner that chose the plan.
        model_version: Version key of the model that served the request
            (stringified; version keys are tuples).
        created_at: ``time.time()`` when the observation was made.
    """

    query: Query
    plan: PlanNode
    predicted_cost: float
    executed_cost: float | None = None
    planner_id: str = ""
    model_version: str = ""
    created_at: float = 0.0

    def fingerprint(self) -> tuple[str, str]:
        """The dedup identity: (query fingerprint, plan fingerprint)."""
        return (self.query.fingerprint(), self.plan.fingerprint())

    def to_json_dict(self) -> dict:
        """JSON-safe dict form (wire codecs for the structural fields)."""
        from repro.server.wire import plan_to_json_dict, query_to_json_dict

        return {
            "query": query_to_json_dict(self.query),
            "plan": plan_to_json_dict(self.plan),
            "predicted_cost": self.predicted_cost,
            "executed_cost": self.executed_cost,
            "planner_id": self.planner_id,
            "model_version": self.model_version,
            "created_at": self.created_at,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ExperienceTuple":
        """Decode one persisted tuple; raises ``WireFormatError`` on bad input."""
        from repro.server.wire import (
            WireFormatError,
            plan_from_json_dict,
            query_from_json_dict,
        )

        if not isinstance(payload, dict):
            raise WireFormatError("experience tuple: expected a JSON object")
        executed = payload.get("executed_cost")
        return cls(
            query=query_from_json_dict(payload.get("query")),
            plan=plan_from_json_dict(payload.get("plan")),
            predicted_cost=float(payload.get("predicted_cost", 0.0)),
            executed_cost=None if executed is None else float(executed),
            planner_id=str(payload.get("planner_id", "")),
            model_version=str(payload.get("model_version", "")),
            created_at=float(payload.get("created_at", 0.0)),
        )


@dataclass
class ReplayBufferStats:
    """Counters describing the replay buffer.

    Attributes:
        size: Distinct (query, plan) entries currently held.
        capacity: Maximum entries.
        seen: Tuples ever offered to :meth:`ReplayBuffer.add`.
        duplicates: Offers that refreshed an existing fingerprint.
        reservoir_replacements: Full-buffer offers that displaced a resident.
        reservoir_skips: Full-buffer offers the reservoir declined.
        restored: Entries loaded from persistence.
        load_errors: Persisted lines that failed to decode (skipped).
    """

    size: int = 0
    capacity: int = 0
    seen: int = 0
    duplicates: int = 0
    reservoir_replacements: int = 0
    reservoir_skips: int = 0
    restored: int = 0
    load_errors: int = 0

    def to_json_dict(self) -> dict:
        """JSON-safe dict form (all fields are JSON-native)."""
        return asdict(self)


@dataclass
class _Entry:
    tuple: ExperienceTuple
    seq: int = 0
    hits: int = 1


class ReplayBuffer:
    """Deduplicating, capacity-bounded, recency-aware experience store.

    Args:
        capacity: Maximum distinct entries (reservoir sampling beyond it).
        recency_half_life: Sampling half-life measured in insertions: an
            entry ``recency_half_life`` insertions older than the newest has
            half its draw weight.
        seed: Seed for the reservoir and sampling RNG (deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 2048,
        recency_half_life: float = 256.0,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if recency_half_life <= 0:
            raise ValueError("recency_half_life must be positive")
        self.capacity = capacity
        self.recency_half_life = recency_half_life
        self._rng = random.Random(seed)
        self._entries: dict[tuple[str, str], _Entry] = {}
        self._order: list[tuple[str, str]] = []  # slot list for reservoir swaps
        self._lock = threading.Lock()
        self._seq = 0
        self._seen = 0
        self._duplicates = 0
        self._replacements = 0
        self._skips = 0
        self._restored = 0
        self._load_errors = 0

    # ------------------------------------------------------------------ #
    # Adding experience
    # ------------------------------------------------------------------ #
    def add(self, item: ExperienceTuple) -> bool:
        """Offer one tuple; returns True when it is (still) resident.

        A known fingerprint refreshes the existing entry (recency, executed
        cost, hit count).  A new fingerprint is inserted directly while there
        is room, and competes in the reservoir once the buffer is full.
        """
        key = item.fingerprint()
        with self._lock:
            self._seen += 1
            self._seq += 1
            entry = self._entries.get(key)
            if entry is not None:
                self._duplicates += 1
                entry.tuple = item
                entry.seq = self._seq
                entry.hits += 1
                return True
            if len(self._entries) < self.capacity:
                self._insert_locked(key, item)
                return True
            # Reservoir (Algorithm R): keep each ever-seen fingerprint
            # resident with probability capacity / seen.
            if self._rng.random() >= self.capacity / self._seen:
                self._skips += 1
                return False
            victim_slot = self._rng.randrange(len(self._order))
            victim_key = self._order[victim_slot]
            del self._entries[victim_key]
            self._order[victim_slot] = key
            self._entries[key] = _Entry(tuple=item, seq=self._seq)
            self._replacements += 1
            return True

    def _insert_locked(self, key: tuple[str, str], item: ExperienceTuple) -> None:
        self._entries[key] = _Entry(tuple=item, seq=self._seq)
        self._order.append(key)

    def extend(self, items) -> int:
        """Offer several tuples; returns how many ended up resident."""
        return sum(int(self.add(item)) for item in items)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, k: int) -> list[ExperienceTuple]:
        """Draw up to ``k`` distinct tuples, recency-weighted.

        Weights decay by ``0.5 ** (age / recency_half_life)`` with age in
        insertions since the entry was last touched, so fresh traffic
        dominates while old fingerprints still surface occasionally.
        """
        if k < 1:
            return []
        with self._lock:
            entries = list(self._entries.values())
            newest = self._seq
            if not entries:
                return []
            weights = [
                0.5 ** ((newest - entry.seq) / self.recency_half_life)
                for entry in entries
            ]
            if k >= len(entries):
                return [entry.tuple for entry in entries]
            # Weighted sampling without replacement via exponential keys
            # (Efraimidis–Spirakis): higher weight → larger key.
            keyed = sorted(
                (
                    (self._rng.random() ** (1.0 / max(weight, 1e-12)), entry)
                    for weight, entry in zip(weights, entries)
                ),
                key=lambda pair: pair[0],
                reverse=True,
            )
            return [entry.tuple for _, entry in keyed[:k]]

    def snapshot(self) -> list[ExperienceTuple]:
        """Every resident tuple, oldest-touched first."""
        with self._lock:
            return [
                entry.tuple
                for entry in sorted(self._entries.values(), key=lambda e: e.seq)
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> int:
        """Write the buffer as JSONL (one tuple per line); returns the count.

        The write goes through a temp file + atomic rename so a crash mid-save
        never truncates a previously good file.
        """
        path = Path(path)
        items = self.snapshot()
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for item in items:
                handle.write(json.dumps(item.to_json_dict(), allow_nan=False))
                handle.write("\n")
        tmp.replace(path)
        return len(items)

    def load(self, path: str | Path) -> int:
        """Restore tuples from a JSONL file; returns how many were added.

        Undecodable lines are counted (``load_errors``) and skipped — a
        corrupt tail must not discard the readable experience before it.
        """
        path = Path(path)
        loaded = 0
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    item = ExperienceTuple.from_json_dict(json.loads(line))
                except Exception:  # noqa: BLE001 - skip corrupt lines, keep rest
                    with self._lock:
                        self._load_errors += 1
                    continue
                if self.add(item):
                    loaded += 1
        with self._lock:
            self._restored += loaded
        return loaded

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> ReplayBufferStats:
        """A snapshot of the buffer counters."""
        with self._lock:
            return ReplayBufferStats(
                size=len(self._entries),
                capacity=self.capacity,
                seen=self._seen,
                duplicates=self._duplicates,
                reservoir_replacements=self._replacements,
                reservoir_skips=self._skips,
                restored=self._restored,
                load_errors=self._load_errors,
            )


def with_executed_cost(item: ExperienceTuple, executed_cost: float) -> ExperienceTuple:
    """A copy of ``item`` carrying its simulated-executed cost."""
    return replace(item, executed_cost=float(executed_cost))
