"""The online trainer loop: close Balsa's on-policy loop against live traffic.

:class:`OnlineTrainerLoop` is the consumer side of the experience subsystem
and the serving analogue of the agent's training iteration (paper §4):

1. **drain** the request-path :class:`~repro.experience.sink.ExperienceSink`
   on a background thread and compute each observation's simulated-executed
   cost under the shared yardstick (``plan_cost`` — the same
   :math:`C_{out}`-style oracle the shadow gate uses), off the hot path;
2. **replay** the costed tuples into the
   :class:`~repro.experience.replay.ReplayBuffer` (dedup + reservoir);
3. on a cadence/threshold policy — at least ``min_new_tuples`` fresh tuples
   and at least ``min_round_interval_seconds`` since the last round — run a
   **fine-tune round**: draw a recency-weighted batch, expand it through the
   agent's :class:`~repro.agent.experience.ExperienceBuffer` (subplan
   augmentation + best-cost label correction, §4.1), featurize, and push it
   through :meth:`ModelLifecycle.submit` — which trains on the
   :class:`~repro.lifecycle.trainer.BackgroundTrainer`, gates the candidate
   on the shadow probe workload, promotes on pass, warms the cache, and arms
   the attached live monitor (the
   :class:`~repro.server.shadow_traffic.TrafficShadower`) for automatic
   rollback.

The loop is fully autonomous once started: train → shadow → promote →
rollback-armed, while the gateway keeps serving.  Every round appends the
windowed mean executed cost of the traffic observed since the previous round
to :attr:`cost_trend` — the series the online-learning soak asserts trends
down.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.agent.experience import ExperienceBuffer
from repro.experience.metrics import ExperienceMetrics
from repro.experience.replay import ExperienceTuple, ReplayBuffer, with_executed_cost
from repro.experience.sink import ExperienceSink
from repro.plans.nodes import PlanNode
from repro.sql.query import Query

if TYPE_CHECKING:
    from repro.lifecycle.manager import ModelLifecycle
    from repro.lifecycle.shadow import PromotionDecision

#: The shared plan yardstick: ``(query, plan) -> cost``.
PlanCost = Callable[[Query, PlanNode], float]


class OnlineTrainerLoop:
    """Drains live experience into autonomous fine-tune → gate → promote rounds.

    Args:
        lifecycle: The train/gate/promote pipeline; its attached live monitor
            is what arms rollback after each promotion this loop lands.
        plan_cost: Simulated-execution yardstick ``(query, plan) -> cost``,
            run on the loop thread (never the request path).
        sink: Request-path sink (one is built when omitted).
        buffer: Replay buffer (one is built when omitted).
        featurizer: Featuriser for training examples (defaults to the
            lifecycle service's serving network's).
        min_new_tuples: Fresh (costed) tuples required before a round fires.
        min_round_interval_seconds: Cooldown between rounds.
        sample_size: Recency-weighted tuples drawn per round.
        max_epochs: Epoch budget forwarded to the background trainer.
        refit_first_round: Refit the label transform on the first round (live
            yardstick costs rarely share the scale the network was born
            with); later rounds fine-tune incrementally.
        persist_path: When set, the replay buffer is restored from this JSONL
            file at construction and re-saved after every round and on close.
        poll_interval_seconds: Loop-thread wake interval.
    """

    def __init__(
        self,
        lifecycle: "ModelLifecycle",
        plan_cost: PlanCost,
        *,
        sink: ExperienceSink | None = None,
        buffer: ReplayBuffer | None = None,
        featurizer=None,
        min_new_tuples: int = 16,
        min_round_interval_seconds: float = 0.0,
        sample_size: int = 128,
        max_epochs: int | None = None,
        refit_first_round: bool = True,
        persist_path=None,
        poll_interval_seconds: float = 0.05,
    ):
        if min_new_tuples < 1:
            raise ValueError("min_new_tuples must be >= 1")
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.lifecycle = lifecycle
        self.plan_cost = plan_cost
        self.sink = sink if sink is not None else ExperienceSink()
        self.buffer = buffer if buffer is not None else ReplayBuffer()
        self.min_new_tuples = min_new_tuples
        self.min_round_interval_seconds = min_round_interval_seconds
        self.sample_size = sample_size
        self.max_epochs = max_epochs
        self.persist_path = persist_path
        self.poll_interval_seconds = poll_interval_seconds
        self._featurizer = featurizer
        self._refit_next_round = refit_first_round

        self._lock = threading.Lock()
        self._round_lock = threading.Lock()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        self._closed = False

        self._promotions_paused = False
        self._pause_reason: str | None = None
        self._new_since_round = 0
        self._window_costs: list[float] = []
        self._last_round_at = 0.0
        self._rounds = 0
        self._promotions = 0
        self._rejections = 0
        self._failures = 0
        self._trained_examples = 0
        self._last_round_seconds = 0.0
        self._cost_trend: list[float] = []

        if persist_path is not None:
            import os

            if os.path.exists(persist_path):
                restored = self.buffer.load(persist_path)
                # Persisted tuples already carry executed costs: they count
                # toward the first round's threshold so a restarted gateway
                # does not wait for a full fresh window before learning.
                with self._lock:
                    self._new_since_round += restored

    # ------------------------------------------------------------------ #
    # Request-path hook (delegates to the sink; never blocks, never raises)
    # ------------------------------------------------------------------ #
    def observe(
        self,
        query: Query,
        plan: PlanNode,
        predicted_cost: float,
        *,
        planner_id: str = "",
        model_version: object = None,
    ) -> None:
        """Record one served decision (the gateway's per-request call)."""
        try:
            item = ExperienceTuple(
                query=query,
                plan=plan,
                predicted_cost=float(predicted_cost),
                planner_id=planner_id,
                model_version="" if model_version is None else str(model_version),
                created_at=time.time(),
            )
        except Exception:  # noqa: BLE001 - the hot path must not fail
            return
        self.sink.record(item)
        if len(self.sink) >= self.min_new_tuples:
            self._wake.set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "OnlineTrainerLoop":
        """Start the autonomous consumer thread (idempotent)."""
        if self._closed:
            raise RuntimeError("online trainer loop is closed")
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="online-trainer-loop", daemon=True
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        """Whether the consumer thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def close(self) -> None:
        """Stop the thread, ingest the sink's remainder, persist the buffer."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._ingest()
        if self.persist_path is not None:
            try:
                self.buffer.save(self.persist_path)
            except OSError:
                pass

    def __enter__(self) -> "OnlineTrainerLoop":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The consumer thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            self._wake.wait(timeout=self.poll_interval_seconds)
            self._wake.clear()
            if self._closed:
                return
            self._ingest()
            if self._round_due():
                try:
                    self._round(force=False)
                except Exception:  # noqa: BLE001 - the loop must survive a round
                    with self._lock:
                        self._failures += 1

    def _ingest(self) -> int:
        """Cost and replay everything queued in the sink; returns the count."""
        drained = self.sink.drain()
        ingested = 0
        for item in drained:
            try:
                executed = float(self.plan_cost(item.query, item.plan))
            except Exception:  # noqa: BLE001 - one bad plan must not stall the loop
                with self._lock:
                    self._failures += 1
                continue
            self.buffer.add(with_executed_cost(item, executed))
            with self._lock:
                self._new_since_round += 1
                self._window_costs.append(executed)
            ingested += 1
        return ingested

    def _round_due(self) -> bool:
        with self._lock:
            if self._promotions_paused:
                # The watchtower says the error budget is burning: keep
                # ingesting experience, but do not promote into a fire.
                return False
            if self._new_since_round < self.min_new_tuples:
                return False
            since = time.monotonic() - self._last_round_at
            return since >= self.min_round_interval_seconds

    def set_promotions_paused(self, paused: bool, reason: str | None = None) -> None:
        """Gate autonomous rounds (the watchtower's protective action).

        While paused the loop still drains the sink and grows the replay
        buffer — nothing is lost — but no fine-tune/promote round fires
        until resumed.  ``run_round_now`` stays available as an explicit
        operator override.
        """
        with self._lock:
            self._promotions_paused = bool(paused)
            self._pause_reason = reason if paused else None
        if not paused:
            self._wake.set()

    @property
    def promotions_paused(self) -> bool:
        with self._lock:
            return self._promotions_paused

    @property
    def pause_reason(self) -> str | None:
        with self._lock:
            return self._pause_reason

    def run_round_now(self) -> "PromotionDecision | None":
        """Ingest pending experience and run one round immediately.

        Bypasses the cadence/threshold policy (tests and the soak use it to
        pace rounds deterministically); returns the gate's decision, or None
        when the buffer holds no experience yet.
        """
        self._ingest()
        return self._round(force=True)

    def _round(self, force: bool) -> "PromotionDecision | None":
        with self._round_lock:
            with self._lock:
                if not force and self._new_since_round < self.min_new_tuples:
                    return None
                window = list(self._window_costs)
                self._window_costs.clear()
                self._new_since_round = 0
                self._last_round_at = time.monotonic()
                refit = self._refit_next_round
            batch = self.buffer.sample(self.sample_size)
            batch = [item for item in batch if item.executed_cost is not None]
            if not batch:
                return None
            started = time.perf_counter()
            points = self._training_points(batch)
            featurizer = self._resolve_featurizer()
            examples = [featurizer.featurize(p.query, p.plan) for p in points]
            labels = [p.label for p in points]
            with self._lock:
                round_number = self._rounds + 1
            decision = self.lifecycle.submit(
                examples,
                labels,
                max_epochs=self.max_epochs,
                refit_label_transform=refit,
                source=f"online-round-{round_number}",
            ).result()
            with self._lock:
                self._rounds += 1
                self._refit_next_round = False
                self._trained_examples += len(points)
                self._last_round_seconds = time.perf_counter() - started
                if window:
                    self._cost_trend.append(sum(window) / len(window))
                if decision.promoted:
                    self._promotions += 1
                else:
                    self._rejections += 1
                round_seconds = self._last_round_seconds
            logging.getLogger("repro.experience").info(
                "online round %d %s",
                round_number,
                "promoted" if decision.promoted else "rejected",
                extra={
                    "repro_fields": {
                        "round": round_number,
                        "promoted": decision.promoted,
                        "candidate_version": decision.candidate_version,
                        "trained_examples": len(points),
                        "round_seconds": round(round_seconds, 4),
                    }
                },
            )
            if self.persist_path is not None:
                try:
                    self.buffer.save(self.persist_path)
                except OSError:
                    pass
            return decision

    def _training_points(self, batch: list[ExperienceTuple]):
        """Expand a sampled batch through Balsa's §4.1 label correction.

        Each tuple becomes one agent-side execution record (its simulated
        cost standing in for latency); the agent buffer then augments by
        subplan and corrects every label to the best cost among sampled
        executions containing that subplan.
        """
        queries = {item.query.name: item.query for item in batch}
        experience = ExperienceBuffer(queries.__getitem__)
        for item in batch:
            experience.add_execution(
                item.query.name, item.plan, item.executed_cost
            )
        return experience.training_points()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def metrics(self) -> ExperienceMetrics:
        """A snapshot of the whole subsystem (sink + buffer + loop)."""
        monitor = getattr(self.lifecycle, "live_monitor", None)
        rollbacks = 0
        stats = getattr(monitor, "stats", None)
        if callable(stats):
            try:
                rollbacks = int(getattr(stats(), "rollbacks", 0))
            except Exception:  # noqa: BLE001 - metrics must not fail
                rollbacks = 0
        with self._lock:
            return ExperienceMetrics(
                running=self.running,
                sink=self.sink.stats(),
                buffer=self.buffer.stats(),
                rounds=self._rounds,
                promotions=self._promotions,
                rejections=self._rejections,
                failures=self._failures,
                rollbacks=rollbacks,
                trained_examples=self._trained_examples,
                last_round_seconds=self._last_round_seconds,
                cost_trend=list(self._cost_trend),
                promotions_paused=self._promotions_paused,
                pause_reason=self._pause_reason,
            )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _resolve_featurizer(self):
        if self._featurizer is not None:
            return self._featurizer
        network = self.lifecycle.service.serving_network()
        if network is None:
            raise RuntimeError(
                "online trainer loop needs a featurizer: pass one explicitly "
                "or front a service with a serving network"
            )
        return network.featurizer
