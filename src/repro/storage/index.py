"""Hash indexes mapping column values to row positions.

The index stores its postings in two parallel arrays (sorted values and the
corresponding row ids) so that lookups are vectorised via ``searchsorted``
rather than Python dictionaries, keeping indexed nested-loop joins fast even
for thousands of probe rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class HashIndex:
    """An index over one column.

    Attributes:
        sorted_values: Column values sorted ascending (one entry per row).
        row_ids: Row positions aligned with ``sorted_values``.
        distinct_values: Sorted unique values.
        starts: For each distinct value, the start offset of its posting run.
        counts: For each distinct value, the number of matching rows.
    """

    sorted_values: np.ndarray
    row_ids: np.ndarray
    distinct_values: np.ndarray
    starts: np.ndarray
    counts: np.ndarray

    @classmethod
    def build(cls, column: np.ndarray) -> "HashIndex":
        """Build an index from a column array."""
        order = np.argsort(column, kind="stable")
        sorted_values = column[order]
        distinct_values, starts, counts = np.unique(
            sorted_values, return_index=True, return_counts=True
        )
        return cls(
            sorted_values=sorted_values,
            row_ids=order.astype(np.int64),
            distinct_values=distinct_values,
            starts=starts,
            counts=counts,
        )

    @property
    def num_rows(self) -> int:
        """Number of indexed rows."""
        return len(self.row_ids)

    @property
    def num_distinct(self) -> int:
        """Number of distinct values."""
        return len(self.distinct_values)

    def lookup(self, value: object) -> np.ndarray:
        """Row positions whose column equals ``value``."""
        pos = np.searchsorted(self.distinct_values, value)
        if pos >= len(self.distinct_values) or self.distinct_values[pos] != value:
            return np.empty(0, dtype=np.int64)
        start = self.starts[pos]
        return self.row_ids[start : start + self.counts[pos]]

    def lookup_many(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised lookup of many probe values.

        Args:
            values: Probe values (may contain duplicates and misses).

        Returns:
            A pair ``(probe_positions, matched_row_ids)``: for every match,
            the index into ``values`` and the matching row id.  Probes without
            matches contribute nothing.
        """
        values = np.asarray(values)
        pos = np.searchsorted(self.distinct_values, values)
        pos_clipped = np.minimum(pos, len(self.distinct_values) - 1)
        hits = self.distinct_values[pos_clipped] == values
        hit_probe_idx = np.flatnonzero(hits)
        if len(hit_probe_idx) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        hit_pos = pos_clipped[hit_probe_idx]
        hit_counts = self.counts[hit_pos]
        hit_starts = self.starts[hit_pos]
        total = int(hit_counts.sum())
        probe_out = np.repeat(hit_probe_idx, hit_counts)
        # Build the flat posting offsets for all hits.
        offsets = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(hit_counts)[:-1])), hit_counts
        )
        row_out = self.row_ids[np.repeat(hit_starts, hit_counts) + offsets]
        return probe_out.astype(np.int64), row_out.astype(np.int64)
