"""Tests for repro.utils (RNG derivation and timers)."""

import time

import numpy as np
import pytest

from repro.utils.rng import RngFactory, derive_seed, new_rng
from repro.utils.timer import Stopwatch, format_seconds


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_differs_by_path(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_sensitive(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_non_negative_63_bit(self):
        for seed in range(20):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63

    def test_accepts_mixed_types(self):
        assert derive_seed(0, 1, "a", 2.5) == derive_seed(0, 1, "a", 2.5)


class TestNewRng:
    def test_same_seed_same_stream(self):
        a, b = new_rng(5), new_rng(5)
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert new_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestRngFactory:
    def test_named_streams_independent(self):
        factory = RngFactory(3)
        a = factory.make("x").integers(0, 1000, 5)
        b = factory.make("y").integers(0, 1000, 5)
        assert not np.array_equal(a, b)

    def test_named_streams_reproducible(self):
        a = RngFactory(3).make("x").integers(0, 1000, 5)
        b = RngFactory(3).make("x").integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_seed_for_matches_make(self):
        factory = RngFactory(9)
        seed = factory.seed_for("stream")
        assert np.array_equal(
            np.random.default_rng(seed).integers(0, 10, 4),
            factory.make("stream").integers(0, 10, 4),
        )


class TestStopwatch:
    def test_measures_elapsed(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        time.sleep(0.01)
        elapsed = stopwatch.stop()
        assert elapsed >= 0.009

    def test_accumulates_across_starts(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        stopwatch.stop()
        first = stopwatch.elapsed
        stopwatch.start()
        stopwatch.stop()
        assert stopwatch.elapsed >= first

    def test_reset(self):
        stopwatch = Stopwatch()
        stopwatch.start()
        stopwatch.stop()
        stopwatch.reset()
        assert stopwatch.elapsed == 0.0

    def test_context_manager(self):
        with Stopwatch() as stopwatch:
            time.sleep(0.005)
        assert stopwatch.elapsed > 0.0


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value, expected_suffix",
        [(5e-7, "us"), (0.005, "ms"), (2.0, "s"), (150.0, "s"), (7500.0, "m")],
    )
    def test_units(self, value, expected_suffix):
        assert format_seconds(value).endswith(expected_suffix)

    def test_minutes_format(self):
        assert format_seconds(125.0).startswith("2m")
