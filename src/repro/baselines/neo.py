"""Neo-impl: learning from expert demonstrations (paper §8.4).

Our best-effort Neo reproduction mirrors the paper's comparison protocol: it
shares Balsa's modelling choices (same value-network architecture, same
featurisation, same beam search) but differs in the algorithm:

- it bootstraps from *expert demonstrations* — one expert-optimizer plan per
  training query, executed once — instead of simulation;
- every iteration it resets the value network to random weights and retrains
  on the entire accumulated experience;
- it uses no timeouts and no exploration.
"""

from __future__ import annotations

import time

import numpy as np

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.agent.environment import BalsaEnvironment
from repro.agent.experience import ExecutionRecord
from repro.agent.history import TrainingHistory
from repro.optimizer.expert import ExpertOptimizer


def neo_config(base: BalsaConfig | None = None) -> BalsaConfig:
    """Derive a Neo-style configuration from a Balsa config.

    Turns off simulation, timeouts, exploration and on-policy learning, which
    is exactly the set of differences the paper controls for in §8.4.
    """
    from dataclasses import replace

    base = base or BalsaConfig()
    return replace(
        base,
        use_simulation=False,
        use_timeouts=False,
        exploration="none",
        on_policy=False,
    )


class NeoAgent(BalsaAgent):
    """The Neo-impl baseline.

    Args:
        environment: Workload environment.
        expert: The expert optimizer providing demonstrations.
        config: Base configuration (Neo-specific switches are forced).
        expert_runtimes: Optional per-query expert latencies for normalisation.
        agent_id: Identifier recorded on experience.
    """

    name = "neo"

    def __init__(
        self,
        environment: BalsaEnvironment,
        expert: ExpertOptimizer,
        config: BalsaConfig | None = None,
        expert_runtimes: dict[str, float] | None = None,
        agent_id: int = 0,
    ):
        super().__init__(
            environment,
            neo_config(config),
            expert_runtimes=expert_runtimes,
            agent_id=agent_id,
        )
        self.expert = expert

    def bootstrap_from_simulation(self) -> None:
        """Bootstrap from expert demonstrations instead of a simulator.

        One demonstration per training query: the expert's plan, executed once
        and added (with subplan augmentation, via the experience buffer) to the
        training data.  The value network is then trained on this dataset.
        """
        from repro.model.value_network import ValueNetwork

        self.value_network = ValueNetwork(self.environment.featurizer, self.config.network)
        started = time.perf_counter()
        latencies = []
        for query in self.environment.train_queries:
            plan, _ = self.expert.optimize_with_cost(query)
            result, _ = self.environment.execute(query, plan, timeout=None)
            latencies.append(result.latency)
            self.experience.add(
                ExecutionRecord(
                    query_name=query.name,
                    plan=plan,
                    latency=result.latency,
                    timed_out=False,
                    iteration=-1,
                    agent_id=self.agent_id,
                )
            )
        points = self.experience.training_points()
        self._fit_points(
            self.value_network,
            points,
            refit_label_transform=True,
            max_epochs=self.config.retrain_epochs,
        )
        self._label_transform_fitted = True
        self.history.sim_dataset_size = len(points)
        self.history.sim_collection_seconds = float(np.sum(latencies))
        self.history.sim_train_seconds = time.perf_counter() - started

    def train(self, num_iterations: int | None = None) -> TrainingHistory:
        """Run demonstration bootstrapping followed by retrain-style iterations."""
        return super().train(num_iterations)
