"""Table 1: number of unique plans vs number of merged agents.

Paper: 1 / 4 / 8 agents -> 27K / 102K / 197K unique plans (1x / 3.8x / 7.3x);
the growth should stay close to linear at this reproduction's scale too.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_table1_unique_plans(benchmark, scale):
    result = run_once(
        benchmark, experiments.run_table1_unique_plans, scale, agent_counts=(1, 2, 4)
    )
    print()
    print(
        format_table(
            ["num agents", "unique plans", "ratio vs 1 agent"],
            [[r["num_agents"], r["unique_plans"], r["ratio"]] for r in result["rows"]],
            title="Table 1: diversified experiences",
        )
    )
    ratios = [r["ratio"] for r in result["rows"]]
    assert ratios == sorted(ratios)
