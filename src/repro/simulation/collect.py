"""Batched simulation data collection via dynamic programming (paper §3.2).

For every training query, the Selinger bottom-up DP enumerates plans over the
bushy space; *every* enumerated candidate (not only the per-subset winners)
becomes a data point ``(query=T, plan=T, cost=C)`` where ``query=T`` is the
original query restricted to the candidate's tables.  Each point is then
expanded by subplan augmentation.  Queries joining ``skip_tables_above`` or
more relations are skipped, exactly as the paper skips queries with ≥ 12
tables to bound DP runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.costmodel.base import CostModel
from repro.optimizer.dp import DynamicProgrammingOptimizer
from repro.plans.nodes import PlanNode
from repro.simulation.augment import augment_data_point
from repro.sql.query import Query
from repro.utils.rng import new_rng


@dataclass
class SimulationDataPoint:
    """One simulation training example.

    Attributes:
        query: The (restricted) query.
        plan: The plan or subplan.
        cost: The overall cost label shared by the whole trajectory.
    """

    query: Query
    plan: PlanNode
    cost: float


@dataclass
class SimulationDataset:
    """The collected simulation dataset ``D_sim``.

    Attributes:
        points: All training points (after augmentation).
        collection_seconds: Wall-clock time spent enumerating and augmenting.
        queries_collected: Queries that contributed data.
        queries_skipped: Queries skipped for exceeding the table-count limit.
    """

    points: list[SimulationDataPoint] = field(default_factory=list)
    collection_seconds: float = 0.0
    queries_collected: int = 0
    queries_skipped: int = 0

    def __len__(self) -> int:
        return len(self.points)

    def labels(self) -> np.ndarray:
        """All cost labels as an array."""
        return np.asarray([p.cost for p in self.points], dtype=np.float64)

    def merge(self, other: "SimulationDataset") -> "SimulationDataset":
        """Concatenate two datasets (used when pooling workloads)."""
        return SimulationDataset(
            points=self.points + other.points,
            collection_seconds=self.collection_seconds + other.collection_seconds,
            queries_collected=self.queries_collected + other.queries_collected,
            queries_skipped=self.queries_skipped + other.queries_skipped,
        )


def collect_simulation_data(
    queries: Iterable[Query],
    cost_model: CostModel,
    skip_tables_above: int = 12,
    max_points_per_query: int | None = 20_000,
    seed: int = 0,
) -> SimulationDataset:
    """Collect ``D_sim`` for a training workload.

    Args:
        queries: Training queries.
        cost_model: The simulator (normally :class:`~repro.costmodel.cout.CoutCostModel`).
        skip_tables_above: Skip queries with at least this many relations
            (paper sets n = 12).
        max_points_per_query: Optional cap on augmented points kept per query
            (uniformly subsampled) to bound memory at large scales.
        seed: Seed for the subsampling.

    Returns:
        The collected :class:`SimulationDataset`.
    """
    rng = new_rng(seed)
    dataset = SimulationDataset()
    started = time.perf_counter()
    enumerator = DynamicProgrammingOptimizer(cost_model, physical=False)
    for query in queries:
        if query.num_tables >= skip_tables_above:
            dataset.queries_skipped += 1
            continue
        result = enumerator.optimize(query, collect_all=True)
        query_points: list[SimulationDataPoint] = []
        for candidate in result.enumerated:
            restricted = query.restricted_to(candidate.aliases)
            for sub_query, subplan, cost in augment_data_point(
                restricted, candidate.plan, candidate.cost
            ):
                query_points.append(
                    SimulationDataPoint(query=sub_query, plan=subplan, cost=cost)
                )
        if (
            max_points_per_query is not None
            and len(query_points) > max_points_per_query
        ):
            keep = rng.choice(
                len(query_points), size=max_points_per_query, replace=False
            )
            query_points = [query_points[i] for i in sorted(keep)]
        dataset.points.extend(query_points)
        dataset.queries_collected += 1
    dataset.collection_seconds = time.perf_counter() - started
    return dataset
