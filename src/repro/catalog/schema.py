"""Schema metadata: tables, columns, keys and their statistical shape.

A :class:`Schema` describes structure only; actual rows are produced by
:mod:`repro.catalog.datagen` and stored by :mod:`repro.storage`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

class ColumnKind(str, enum.Enum):
    """Statistical shape of a column, used by the data generator."""

    PRIMARY_KEY = "primary_key"
    FOREIGN_KEY = "foreign_key"
    CATEGORICAL = "categorical"
    NUMERIC = "numeric"


@dataclass(frozen=True)
class ColumnDef:
    """Definition of one column.

    Attributes:
        name: Column name.
        kind: Statistical shape (:class:`ColumnKind`).
        distinct: Target number of distinct values for categorical columns.
        low: Lower bound for numeric columns.
        high: Upper bound for numeric columns.
        skew: Zipf-like skew parameter for categorical / foreign key columns.
            ``0.0`` means uniform; larger values concentrate mass on few values.
        null_fraction: Fraction of rows set to the sentinel ``-1`` to emulate
            NULLs (the engine treats ``-1`` like any other value, which is a
            conservative simplification).
    """

    name: str
    kind: ColumnKind = ColumnKind.CATEGORICAL
    distinct: int = 10
    low: float = 0.0
    high: float = 100.0
    skew: float = 0.5
    null_fraction: float = 0.0


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key relationship ``table.column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str = "id"


@dataclass(frozen=True)
class TableDef:
    """Definition of one table.

    Attributes:
        name: Table name.
        base_rows: Row count at ``scale=1.0`` (scaled linearly by the data
            generator).
        columns: Column definitions, excluding the implicit ``id`` primary key
            which every table receives automatically.
        foreign_keys: FK relationships to other tables.
    """

    name: str
    base_rows: int
    columns: tuple[ColumnDef, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()

    def column(self, name: str) -> ColumnDef:
        """Look up a column definition (including the implicit ``id``)."""
        if name == "id":
            return ColumnDef("id", ColumnKind.PRIMARY_KEY)
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> list[str]:
        """All column names, starting with the implicit primary key."""
        return ["id"] + [c.name for c in self.columns]

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """Return the FK constraint on ``column``, if any."""
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None


@dataclass
class Schema:
    """A named collection of tables with referential structure.

    Attributes:
        name: Schema name (``"imdb"`` or ``"tpch"``).
        tables: Mapping from table name to :class:`TableDef`.
    """

    name: str
    tables: dict[str, TableDef] = field(default_factory=dict)

    def add(self, table: TableDef) -> None:
        """Register a table definition."""
        if table.name in self.tables:
            raise ValueError(f"duplicate table {table.name!r} in schema {self.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> TableDef:
        """Look up a table definition by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no table {name!r}") from None

    def table_names(self) -> list[str]:
        """All table names in insertion order."""
        return list(self.tables)

    def validate(self) -> None:
        """Check that all foreign keys reference existing tables and columns.

        Raises:
            ValueError: On a dangling reference.
        """
        for table in self.tables.values():
            column_names = set(table.column_names())
            for fk in table.foreign_keys:
                if fk.column not in column_names:
                    raise ValueError(
                        f"{table.name}.{fk.column}: FK column does not exist"
                    )
                if fk.ref_table not in self.tables:
                    raise ValueError(
                        f"{table.name}.{fk.column}: references unknown table "
                        f"{fk.ref_table!r}"
                    )
                ref = self.tables[fk.ref_table]
                if fk.ref_column not in ref.column_names():
                    raise ValueError(
                        f"{table.name}.{fk.column}: references unknown column "
                        f"{fk.ref_table}.{fk.ref_column}"
                    )

    def foreign_key_edges(self) -> list[tuple[str, str, str, str]]:
        """All FK edges as ``(table, column, ref_table, ref_column)`` tuples."""
        edges = []
        for table in self.tables.values():
            for fk in table.foreign_keys:
                edges.append((table.name, fk.column, fk.ref_table, fk.ref_column))
        return edges

    def join_columns(self, table_a: str, table_b: str) -> list[tuple[str, str]]:
        """Column pairs on which ``table_a`` and ``table_b`` can be equi-joined.

        A pair is joinable either directly through an FK between the two
        tables, or indirectly when both tables have FKs referencing the same
        third table column (e.g. two fact tables sharing ``movie_id``).
        """
        pairs: list[tuple[str, str]] = []
        a_def, b_def = self.table(table_a), self.table(table_b)
        for fk in a_def.foreign_keys:
            if fk.ref_table == table_b:
                pairs.append((fk.column, fk.ref_column))
        for fk in b_def.foreign_keys:
            if fk.ref_table == table_a:
                pairs.append((fk.ref_column, fk.column))
        for fk_a in a_def.foreign_keys:
            for fk_b in b_def.foreign_keys:
                same_target = (
                    fk_a.ref_table == fk_b.ref_table
                    and fk_a.ref_column == fk_b.ref_column
                )
                if same_target:
                    pairs.append((fk_a.column, fk_b.column))
        # Deduplicate, preserving order.
        seen: set[tuple[str, str]] = set()
        unique = []
        for pair in pairs:
            if pair not in seen:
                seen.add(pair)
                unique.append(pair)
        return unique
