"""Tests for the column store: tables, hash indexes and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.imdb import make_imdb_schema
from repro.storage.database import Database
from repro.storage.index import HashIndex
from repro.storage.statistics import collect_statistics
from repro.storage.table import Table


class TestTable:
    def test_num_rows_and_columns(self):
        table = Table("t", {"id": np.arange(5), "x": np.ones(5)})
        assert table.num_rows == 5
        assert set(table.column_names()) == {"id", "x"}

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", {"a": np.arange(3), "b": np.arange(4)})

    def test_unknown_column_raises(self):
        table = Table("t", {"id": np.arange(3)})
        with pytest.raises(KeyError):
            table.column("nope")

    def test_index_built_lazily(self):
        table = Table("t", {"id": np.arange(10)})
        assert not table.has_index("id")
        table.index("id")
        assert table.has_index("id")

    def test_select_returns_positions(self):
        table = Table("t", {"x": np.array([1, 5, 3, 5])})
        positions = table.select(table.column("x") == 5)
        assert positions.tolist() == [1, 3]

    def test_empty_table(self):
        assert Table("t", {}).num_rows == 0


class TestHashIndex:
    def test_lookup_existing_value(self):
        index = HashIndex.build(np.array([5, 3, 5, 7, 3, 5]))
        assert sorted(index.lookup(5).tolist()) == [0, 2, 5]
        assert sorted(index.lookup(3).tolist()) == [1, 4]

    def test_lookup_missing_value(self):
        index = HashIndex.build(np.array([1, 2, 3]))
        assert index.lookup(99).size == 0

    def test_counts(self):
        index = HashIndex.build(np.array([1, 1, 2]))
        assert index.num_rows == 3
        assert index.num_distinct == 2

    def test_lookup_many_matches_individual_lookups(self):
        column = np.array([4, 1, 4, 2, 9, 4])
        index = HashIndex.build(column)
        probes = np.array([4, 7, 1])
        probe_idx, rows = index.lookup_many(probes)
        pairs = set(zip(probe_idx.tolist(), rows.tolist()))
        expected = set()
        for i, value in enumerate(probes):
            for row in index.lookup(value):
                expected.add((i, int(row)))
        assert pairs == expected

    def test_lookup_many_no_matches(self):
        index = HashIndex.build(np.array([1, 2, 3]))
        probe_idx, rows = index.lookup_many(np.array([10, 11]))
        assert probe_idx.size == 0 and rows.size == 0

    @settings(max_examples=30, deadline=None)
    @given(
        column=st.lists(st.integers(0, 20), min_size=1, max_size=60),
        probes=st.lists(st.integers(0, 25), min_size=0, max_size=30),
    )
    def test_lookup_many_property(self, column, probes):
        column = np.array(column)
        probes = np.array(probes, dtype=np.int64)
        index = HashIndex.build(column)
        probe_idx, rows = index.lookup_many(probes)
        # Every returned pair is a true match.
        if probe_idx.size:
            assert np.all(column[rows] == probes[probe_idx])
        # Total matches equals the brute-force count.
        brute = sum(int((column == p).sum()) for p in probes)
        assert probe_idx.size == brute


class TestDatabase:
    def test_add_and_lookup(self, imdb_database):
        assert imdb_database.table("title").num_rows > 0
        assert imdb_database.total_rows() > imdb_database.num_rows("title")

    def test_unknown_table_raises(self, imdb_database):
        with pytest.raises(KeyError):
            imdb_database.table("nope")

    def test_add_table_not_in_schema_rejected(self):
        schema = make_imdb_schema(fact_rows=50)
        database = Database(schema=schema)
        with pytest.raises(KeyError):
            database.add_table(Table("unknown", {"id": np.arange(3)}))

    def test_join_indexes_built(self, imdb_database):
        assert imdb_database.table("movie_companies").has_index("movie_id")
        assert imdb_database.table("title").has_index("id")


class TestStatistics:
    def test_collect_statistics_shapes(self, imdb_database):
        stats = collect_statistics(imdb_database, num_buckets=10, num_mcv=5)
        title = stats["title"]
        assert title.num_rows == imdb_database.num_rows("title")
        year = title.column("production_year")
        assert year.num_distinct > 10
        assert len(year.histogram_bounds) == 11
        assert len(year.most_common_values) <= 5

    def test_equality_selectivity_bounds(self, imdb_database):
        stats = collect_statistics(imdb_database)
        column = stats["cast_info"].column("role_id")
        selectivity = column.equality_selectivity(0)
        assert 0.0 <= selectivity <= 1.0

    def test_range_selectivity_full_range_near_one(self, imdb_database):
        stats = collect_statistics(imdb_database)
        column = stats["title"].column("production_year")
        assert column.range_selectivity(None, None) > 0.95
        assert column.range_selectivity(column.max_value + 1, None) <= 0.05

    def test_range_selectivity_monotone(self, imdb_database):
        stats = collect_statistics(imdb_database)
        column = stats["title"].column("production_year")
        narrow = column.range_selectivity(1990, 1995)
        wide = column.range_selectivity(1950, 2010)
        assert wide >= narrow

    def test_empty_range(self, imdb_database):
        stats = collect_statistics(imdb_database)
        column = stats["title"].column("production_year")
        assert column.range_selectivity(2000, 1990) == 0.0
