"""Tests for the numpy NN substrate, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.early_stopping import EarlyStopping
from repro.nn.layers import Dropout, Linear, Parameter, ReLU
from repro.nn.losses import mse_loss
from repro.nn.optim import SGD, Adam
from repro.nn.tree_conv import DynamicMaxPool, TreeBatch, TreeConvLayer


def numerical_gradient(function, array, epsilon=1e-6):
    """Central-difference gradient of a scalar-valued function of ``array``."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = function()
        flat[i] = original - epsilon
        minus = function()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


def make_tree_batch(rng, batch=3, nodes=4, dim=5):
    """A small random TreeBatch: chains of nodes with valid child pointers."""
    slots = nodes + 1
    features = rng.normal(size=(batch, slots, dim))
    features[:, 0] = 0.0
    left = np.zeros((batch, slots), dtype=np.int64)
    right = np.zeros((batch, slots), dtype=np.int64)
    valid = np.zeros((batch, slots), dtype=bool)
    valid[:, 1 : nodes + 1] = True
    # node i's children are i+1 (left) and i+2 (right) where they exist.
    for slot in range(1, nodes + 1):
        if slot + 1 <= nodes:
            left[:, slot] = slot + 1
        if slot + 2 <= nodes:
            right[:, slot] = slot + 2
    return TreeBatch(features=features, left=left, right=right, valid=valid)


class TestParameter:
    def test_zero_grad(self):
        parameter = Parameter("p", np.ones((2, 2)))
        parameter.grad += 3.0
        parameter.zero_grad()
        assert np.all(parameter.grad == 0)
        assert parameter.size == 4


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer.forward(np.random.default_rng(0).normal(size=(7, 4)))
        assert out.shape == (7, 3)

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(1)
        layer = Linear(4, 3, rng=1)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss_value():
            out = layer.forward(x)
            return 0.5 * float(np.sum((out - target) ** 2))

        out = layer.forward(x)
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        layer.backward(out - target)
        numeric = numerical_gradient(loss_value, layer.weight.value)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-4)

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(2)
        layer = Linear(3, 2, rng=2)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        out = layer.forward(x)
        grad_input = layer.backward(out - target)

        def loss_value():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        numeric = numerical_gradient(loss_value, x)
        assert np.allclose(grad_input, numeric, atol=1e-4)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.zeros((1, 2)))


class TestActivations:
    def test_relu_forward_and_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]])
        out = relu.forward(x)
        assert np.array_equal(out, [[0.0, 2.0], [3.0, 0.0]])
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_dropout_eval_mode_identity(self):
        dropout = Dropout(0.5, rng=0)
        x = np.ones((10, 10))
        assert np.array_equal(dropout.forward(x, training=False), x)

    def test_dropout_training_scales(self):
        dropout = Dropout(0.5, rng=0)
        x = np.ones((2000,))
        out = dropout.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.1
        assert (out == 0).any()

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLoss:
    def test_mse_zero_for_equal(self):
        loss, grad = mse_loss(np.ones(4), np.ones(4))
        assert loss == 0.0 and np.all(grad == 0)

    def test_mse_gradient_direction(self):
        loss, grad = mse_loss(np.array([2.0]), np.array([0.0]))
        assert loss == pytest.approx(4.0)
        assert grad[0] > 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.ones(3), np.ones(4))


class TestOptimizers:
    def _quadratic_parameters(self):
        return [Parameter("w", np.array([5.0, -3.0]))]

    @pytest.mark.parametrize("optimizer_cls, kwargs", [(SGD, {"learning_rate": 0.1}), (Adam, {"learning_rate": 0.2})])
    def test_minimises_quadratic(self, optimizer_cls, kwargs):
        parameters = self._quadratic_parameters()
        optimizer = optimizer_cls(parameters, **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            parameters[0].grad += 2 * parameters[0].value
            optimizer.step()
        assert np.all(np.abs(parameters[0].value) < 0.05)

    def test_sgd_momentum_moves_faster_initially(self):
        plain = self._quadratic_parameters()
        momentum = self._quadratic_parameters()
        sgd_plain = SGD(plain, learning_rate=0.01)
        sgd_momentum = SGD(momentum, learning_rate=0.01, momentum=0.9)
        for _ in range(50):
            for params, opt in ((plain, sgd_plain), (momentum, sgd_momentum)):
                opt.zero_grad()
                params[0].grad += 2 * params[0].value
                opt.step()
        assert np.abs(momentum[0].value).sum() < np.abs(plain[0].value).sum()

    def test_gradient_clipping(self):
        parameters = [Parameter("w", np.zeros(3))]
        optimizer = SGD(parameters, learning_rate=1.0)
        parameters[0].grad += np.array([3.0, 4.0, 0.0])
        norm = optimizer.clip_gradients(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(parameters[0].grad) == pytest.approx(1.0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(1.0, 0)
        assert not stopper.update(1.1, 1)
        assert stopper.update(1.2, 2)
        assert stopper.should_stop

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, 0)
        stopper.update(1.1, 1)
        assert not stopper.update(0.5, 2)
        assert stopper.best_epoch == 2


class TestTreeConv:
    def test_forward_shape_and_sentinel_zero(self):
        rng = np.random.default_rng(0)
        batch = make_tree_batch(rng, batch=2, nodes=3, dim=4)
        layer = TreeConvLayer(4, 6, rng=0)
        out = layer.forward(batch)
        assert out.features.shape == (2, 4, 6)
        assert np.all(out.features[:, 0] == 0.0)

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(3)
        batch = make_tree_batch(rng, batch=2, nodes=3, dim=4)
        layer = TreeConvLayer(4, 3, rng=3)
        target = rng.normal(size=(2, 4, 3))

        def loss_value():
            return 0.5 * float(np.sum((layer.forward(batch).features - target) ** 2))

        out = layer.forward(batch)
        for parameter in layer.parameters():
            parameter.zero_grad()
        layer.backward(out.features - target)
        for parameter in [layer.w_root, layer.w_left, layer.w_right, layer.bias]:
            numeric = numerical_gradient(loss_value, parameter.value)
            assert np.allclose(parameter.grad, numeric, atol=1e-4), parameter.name

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(4)
        batch = make_tree_batch(rng, batch=1, nodes=3, dim=3)
        layer = TreeConvLayer(3, 2, rng=4)
        target = rng.normal(size=(1, 4, 2))
        out = layer.forward(batch)
        grad_input = layer.backward(out.features - target)

        def loss_value():
            return 0.5 * float(np.sum((layer.forward(batch).features - target) ** 2))

        numeric = numerical_gradient(loss_value, batch.features)
        # Sentinel/padded positions are excluded from the comparison: their
        # features are constants of the encoding, not trainable inputs.
        mask = batch.valid[..., None]
        assert np.allclose(grad_input * mask, numeric * mask, atol=1e-4)

    def test_pooling_max_and_backward(self):
        rng = np.random.default_rng(5)
        batch = make_tree_batch(rng, batch=2, nodes=3, dim=4)
        pool = DynamicMaxPool()
        pooled = pool.forward(batch)
        assert pooled.shape == (2, 4)
        expected = batch.features[:, 1:4].max(axis=1)
        assert np.allclose(pooled, expected)
        grad = pool.backward(np.ones_like(pooled))
        assert grad.shape == batch.features.shape
        # Each (example, channel) routes exactly one unit of gradient.
        assert grad.sum() == pytest.approx(2 * 4)
        assert np.all(grad[:, 0] == 0.0)
