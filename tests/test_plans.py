"""Tests for plan trees: nodes, builders, shape analysis and validation."""

import pytest

from repro.plans.analysis import PlanShape, operator_composition, plan_shape
from repro.plans.builders import join, left_deep_plan, scan
from repro.plans.nodes import JoinOperator, ScanNode, ScanOperator
from repro.plans.validation import InvalidPlanError, is_valid_plan, validate_plan


@pytest.fixture
def plans(five_table_query):
    q = five_table_query
    left_deep = left_deep_plan(q, ["t", "mc", "cn", "mi", "it"])
    # A bushy plan covering all five aliases: ((mc ⋈ cn) ⋈ t) ⋈ (mi ⋈ it).
    bushy = join(
        join(join(scan(q, "mc"), scan(q, "cn")), scan(q, "t")),
        join(scan(q, "mi"), scan(q, "it")),
        JoinOperator.MERGE_JOIN,
    )
    return q, left_deep, bushy


class TestNodes:
    def test_scan_properties(self, three_table_query):
        node = scan(three_table_query, "t", ScanOperator.INDEX_SCAN)
        assert node.leaf_aliases == frozenset({"t"})
        assert node.num_tables == 1 and node.num_joins == 0
        assert node.height == 1
        assert "IndexScan" in node.fingerprint()
        assert node.logical_fingerprint() == "Scan(t)"

    def test_join_properties(self, three_table_query):
        q = three_table_query
        node = join(scan(q, "t"), scan(q, "mc"), JoinOperator.NESTED_LOOP)
        assert node.leaf_aliases == frozenset({"t", "mc"})
        assert node.num_joins == 1
        assert node.height == 2
        assert "NestedLoop" in node.fingerprint()

    def test_join_overlapping_inputs_rejected(self, three_table_query):
        q = three_table_query
        with pytest.raises(ValueError):
            join(scan(q, "t"), join(scan(q, "t"), scan(q, "mc")))

    def test_fingerprint_distinguishes_operators(self, three_table_query):
        q = three_table_query
        a = join(scan(q, "t"), scan(q, "mc"), JoinOperator.HASH_JOIN)
        b = join(scan(q, "t"), scan(q, "mc"), JoinOperator.MERGE_JOIN)
        assert a.fingerprint() != b.fingerprint()
        assert a.logical_fingerprint() == b.logical_fingerprint()

    def test_fingerprint_distinguishes_order(self, three_table_query):
        q = three_table_query
        a = join(scan(q, "t"), scan(q, "mc"))
        b = join(scan(q, "mc"), scan(q, "t"))
        assert a.fingerprint() != b.fingerprint()

    def test_iter_nodes_counts(self, plans):
        _, left_deep, bushy = plans
        assert len(list(left_deep.iter_nodes())) == 9  # 5 scans + 4 joins
        assert len(list(bushy.iter_nodes())) == 9  # 5 scans + 4 joins
        assert len(list(left_deep.iter_joins())) == 4
        assert len(list(left_deep.iter_scans())) == 5

    def test_with_operator(self, three_table_query):
        node = scan(three_table_query, "t")
        changed = node.with_operator(ScanOperator.INDEX_SCAN)
        assert changed.operator is ScanOperator.INDEX_SCAN
        assert node.operator is ScanOperator.SEQ_SCAN

    def test_describe_is_multiline_for_joins(self, plans):
        _, left_deep, _ = plans
        assert len(left_deep.describe().splitlines()) == 9

    def test_nodes_hashable_and_equal(self, three_table_query):
        q = three_table_query
        a = join(scan(q, "t"), scan(q, "mc"))
        b = join(scan(q, "t"), scan(q, "mc"))
        assert a == b and hash(a) == hash(b)


class TestBuilders:
    def test_left_deep_plan_shape(self, plans):
        _, left_deep, _ = plans
        assert plan_shape(left_deep) is PlanShape.LEFT_DEEP

    def test_left_deep_requires_permutation(self, five_table_query):
        with pytest.raises(ValueError):
            left_deep_plan(five_table_query, ["t", "mc"])


class TestAnalysis:
    def test_shapes(self, plans):
        q, left_deep, bushy = plans
        assert plan_shape(bushy) is PlanShape.BUSHY
        assert plan_shape(scan(q, "t")) is PlanShape.SINGLE_TABLE
        right_deep = join(scan(q, "t"), join(scan(q, "mc"), scan(q, "cn")))
        assert plan_shape(right_deep) is PlanShape.RIGHT_DEEP

    def test_operator_composition_fractions(self, plans):
        _, left_deep, bushy = plans
        composition = operator_composition([left_deep, bushy])
        assert composition.num_plans == 2
        assert abs(sum(composition.join_fractions.values()) - 1.0) < 1e-9
        assert abs(sum(composition.shape_fractions.values()) - 1.0) < 1e-9
        assert composition.shape_fractions[PlanShape.BUSHY] == 0.5

    def test_empty_composition(self):
        composition = operator_composition([])
        assert composition.num_plans == 0


class TestValidation:
    def test_valid_plans_pass(self, plans):
        q, left_deep, bushy = plans
        validate_plan(q, left_deep)
        validate_plan(q, bushy)
        assert is_valid_plan(q, left_deep)

    def test_partial_plan_requires_flag(self, five_table_query):
        q = five_table_query
        partial = join(scan(q, "t"), scan(q, "mc"))
        with pytest.raises(InvalidPlanError):
            validate_plan(q, partial)
        validate_plan(q, partial, require_complete=False)

    def test_cross_product_rejected(self, five_table_query):
        q = five_table_query
        cross = join(scan(q, "cn"), scan(q, "it"))
        with pytest.raises(InvalidPlanError):
            validate_plan(q, cross, require_complete=False)

    def test_unknown_alias_rejected(self, three_table_query, five_table_query):
        plan = scan(five_table_query, "mi")
        with pytest.raises(InvalidPlanError):
            validate_plan(three_table_query, plan, require_complete=False)

    def test_wrong_table_for_alias_rejected(self, three_table_query):
        from repro.plans.nodes import ScanNode

        bad = ScanNode(alias="t", table="name")
        with pytest.raises(InvalidPlanError):
            validate_plan(three_table_query, bad, require_complete=False)
