"""Plain-text rendering of experiment results (tables and curve series)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render a simple aligned text table.

    Args:
        headers: Column headers.
        rows: Row values (converted with ``str``; floats get 3 decimals).
        title: Optional title line.

    Returns:
        The rendered table as a string.
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered_rows = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows)) if rendered_rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]], x_label: str = "iteration"
) -> str:
    """Render named numeric series (learning curves) as aligned columns."""
    names = list(series)
    length = max((len(values) for values in series.values()), default=0)
    headers = [x_label] + names
    rows = []
    for i in range(length):
        row: list[object] = [i]
        for name in names:
            values = series[name]
            row.append(float(values[i]) if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows)
