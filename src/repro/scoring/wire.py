"""Pickle-free wire format for featurised examples and predictions.

The process-based scoring backend featurises in the *submitting* worker and
ships only numeric payloads to the scorer processes — never queries, plans,
networks or any other rich object graph.  Payloads use a raw fixed-layout
binary format (a magic tag, a little-endian header of counts/dimensions,
then the flat float64/int64 buffers): no pickling on either side, and
decoding is a handful of ``np.frombuffer`` views rather than an archive
parse — this sits on the per-frontier hot path of every beam search.

Layout of one example batch (``pack_examples``), after the 4-byte magic and
the ``<4q`` header ``(n, query_dim, node_dim, total_slots)``:

- ``queries``   — ``(n, query_dim)`` float64 query encodings;
- ``features``  — the per-example node tables, concatenated along axis 0 to
  ``(total_slots, node_dim)``;
- ``left`` / ``right`` — child indices, concatenated the same way;
- ``slots``     — rows each example occupies in the concatenated tables;
- ``num_nodes`` — real (non-sentinel) node count per example.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.featurization.featurizer import FeaturizedExample
from repro.featurization.plan_encoder import FlattenedPlan

#: Format tag opening every payload (bump on layout changes).
WIRE_MAGIC = b"FEW1"
_HEADER = struct.Struct("<4q")


def packed_size(examples: Sequence[FeaturizedExample]) -> int:
    """Exact byte size of the :func:`pack_examples` payload for ``examples``.

    Cheap (no array materialisation), so callers can size a shared-memory
    slot — and fall back to the copying path when the payload won't fit —
    before packing anything.
    """
    if not examples:
        raise ValueError("cannot pack zero examples")
    n = len(examples)
    query_dim = examples[0].query_encoding.shape[0]
    node_dim = examples[0].plan.features.shape[1]
    total_slots = sum(example.plan.features.shape[0] for example in examples)
    values = n * query_dim + total_slots * node_dim + 2 * total_slots + 2 * n
    return len(WIRE_MAGIC) + _HEADER.size + 8 * values


def pack_examples_into(
    target, examples: Sequence[FeaturizedExample]
) -> int:
    """Write the :func:`pack_examples` layout in place into ``target``.

    ``target`` is any writable buffer (a shared-memory slot view, a
    ``bytearray``) of at least :func:`packed_size` bytes.  Each source
    array is copied exactly once, straight into its final position — no
    intermediate concatenation, no joined ``bytes``.  Returns the bytes
    written.
    """
    if not examples:
        raise ValueError("cannot pack zero examples")
    size = packed_size(examples)
    view = memoryview(target)
    if view.readonly or len(view) < size:
        raise ValueError(
            f"need a writable buffer of >= {size} bytes, have "
            f"{'read-only ' if view.readonly else ''}{len(view)}"
        )
    n = len(examples)
    query_dim = examples[0].query_encoding.shape[0]
    node_dim = examples[0].plan.features.shape[1]
    total_slots = sum(example.plan.features.shape[0] for example in examples)
    view[: len(WIRE_MAGIC)] = WIRE_MAGIC
    _HEADER.pack_into(view, len(WIRE_MAGIC), n, query_dim, node_dim, total_slots)
    offset = len(WIRE_MAGIC) + _HEADER.size

    def put(source, dtype) -> None:
        nonlocal offset
        array = np.ascontiguousarray(source, dtype=dtype)
        out = np.frombuffer(view, dtype=dtype, count=array.size, offset=offset)
        out[:] = array.reshape(-1)
        offset += array.nbytes

    for example in examples:
        put(example.query_encoding, np.float64)
    for example in examples:
        put(example.plan.features, np.float64)
    for example in examples:
        put(example.plan.left, np.int64)
    for example in examples:
        put(example.plan.right, np.int64)
    put([example.plan.features.shape[0] for example in examples], np.int64)
    put([example.plan.num_nodes for example in examples], np.int64)
    assert offset == size
    return size


def pack_examples(examples: Sequence[FeaturizedExample]) -> bytes:
    """Serialise featurised examples into one self-contained payload."""
    buffer = bytearray(packed_size(examples))
    pack_examples_into(buffer, examples)
    return bytes(buffer)


def unpack_examples(payload) -> list[FeaturizedExample]:
    """Rebuild the featurised examples from a :func:`pack_examples` payload.

    ``payload`` is ``bytes`` or any buffer (e.g. a shared-memory slot
    view); decoding is ``np.frombuffer`` views either way, so reading from
    shared memory copies nothing.
    """
    view = memoryview(payload)
    if len(view) < len(WIRE_MAGIC) + _HEADER.size or bytes(
        view[: len(WIRE_MAGIC)]
    ) != WIRE_MAGIC:
        raise ValueError(
            f"not a {WIRE_MAGIC!r} scoring payload ({len(payload)} bytes)"
        )
    offset = len(WIRE_MAGIC)
    n, query_dim, node_dim, total_slots = _HEADER.unpack_from(view, offset)
    offset += _HEADER.size

    def take(count: int, dtype) -> np.ndarray:
        nonlocal offset
        nbytes = count * np.dtype(dtype).itemsize
        if offset + nbytes > len(view):
            raise ValueError(
                f"corrupt payload: wanted {nbytes} bytes at offset {offset}, "
                f"have {len(view)}"
            )
        array = np.frombuffer(view, dtype=dtype, count=count, offset=offset)
        offset += nbytes
        return array

    queries = take(n * query_dim, np.float64).reshape(n, query_dim)
    features = take(total_slots * node_dim, np.float64).reshape(total_slots, node_dim)
    left = take(total_slots, np.int64)
    right = take(total_slots, np.int64)
    slots = take(n, np.int64)
    num_nodes = take(n, np.int64)
    if offset != len(view):
        raise ValueError(
            f"corrupt payload: {len(view) - offset} trailing bytes after parse"
        )
    if int(slots.sum()) != total_slots:
        raise ValueError(
            f"corrupt payload: slots account for {int(slots.sum())} node rows, "
            f"tables hold {total_slots}"
        )
    examples: list[FeaturizedExample] = []
    row = 0
    for i in range(n):
        rows = int(slots[i])
        examples.append(
            FeaturizedExample(
                query_encoding=queries[i],
                plan=FlattenedPlan(
                    features=features[row : row + rows],
                    left=left[row : row + rows],
                    right=right[row : row + rows],
                    num_nodes=int(num_nodes[i]),
                ),
            )
        )
        row += rows
    return examples


def pack_predictions(values: np.ndarray) -> bytes:
    """Serialise a prediction vector (raw float64 buffer)."""
    return np.ascontiguousarray(values, dtype=np.float64).tobytes()


def pack_predictions_into(target, values: np.ndarray) -> int:
    """Write a prediction vector in place into ``target``; returns bytes."""
    array = np.ascontiguousarray(values, dtype=np.float64)
    out = np.frombuffer(target, dtype=np.float64, count=array.size)
    out[:] = array
    return array.nbytes


def unpack_predictions(payload) -> np.ndarray:
    """Rebuild a prediction vector from :func:`pack_predictions` bytes.

    Accepts any buffer and always copies, so callers may release a
    shared-memory slot as soon as this returns.
    """
    return np.frombuffer(payload, dtype=np.float64).copy()


# ---------------------------------------------------------------------- #
# Trace carriage
# ---------------------------------------------------------------------- #
# ``unpack_examples`` rejects trailing bytes by design, so the trace id
# cannot ride inside the FEW1 layout.  Traced payloads instead wear a thin
# outer envelope with its own magic: requests carry the trace id to the
# scorer, replies carry the scorer-measured forward-pass duration back.
# Untraced payloads travel bare; ``detach_*`` pass them through untouched,
# so mixed traffic (and old spool replays) keeps working.
TRACE_MAGIC = b"FET1"
SPAN_MAGIC = b"FES1"
_TRACE_HEADER = struct.Struct("<H")  # trace-id byte length
_SPAN_HEADER = struct.Struct("<qd")  # scorer worker id, duration seconds


def attach_trace(payload: bytes, trace_id: str) -> bytes:
    """Wrap a request payload with the originating trace id."""
    encoded = trace_id.encode("ascii", "replace")
    return b"".join((TRACE_MAGIC, _TRACE_HEADER.pack(len(encoded)), encoded, payload))


def detach_trace(payload: bytes) -> "tuple[str | None, bytes]":
    """Split ``(trace_id, inner payload)``; bare payloads pass through."""
    if not payload.startswith(TRACE_MAGIC):
        return None, payload
    offset = len(TRACE_MAGIC)
    (id_len,) = _TRACE_HEADER.unpack_from(payload, offset)
    offset += _TRACE_HEADER.size
    trace_id = payload[offset : offset + id_len].decode("ascii", "replace")
    return trace_id, payload[offset + id_len :]


def attach_span(payload: bytes, worker_id: int, seconds: float) -> bytes:
    """Wrap a reply payload with the scorer-measured forward duration."""
    return b"".join((SPAN_MAGIC, _SPAN_HEADER.pack(worker_id, seconds), payload))


def detach_span(payload: bytes) -> "tuple[tuple[int, float] | None, bytes]":
    """Split ``((worker_id, seconds), inner payload)``; bare passes through."""
    if not payload.startswith(SPAN_MAGIC):
        return None, payload
    worker_id, seconds = _SPAN_HEADER.unpack_from(payload, len(SPAN_MAGIC))
    return (worker_id, seconds), payload[len(SPAN_MAGIC) + _SPAN_HEADER.size :]
