"""Deterministic random-number helpers.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``.  The helpers here make it easy to derive
independent, reproducible streams from a single root seed, which the
experiments use to control run-to-run variance (the paper reports medians of
8 seeded runs).
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a stable child seed from ``root_seed`` and a path of names.

    The derivation is order-sensitive and collision-resistant enough for
    experiment bookkeeping (SHA-256 over the textual path).

    Args:
        root_seed: The experiment-level seed.
        *names: Any hashable path components (strings, ints, ...).

    Returns:
        A non-negative 63-bit integer usable as a numpy seed.
    """
    text = repr((int(root_seed),) + tuple(str(n) for n in names))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def new_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Passing an existing generator returns it unchanged; passing ``None``
    returns a freshly seeded generator from OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Factory producing named, independent random streams from one seed.

    Example:
        >>> factory = RngFactory(7)
        >>> a = factory.make("datagen")
        >>> b = factory.make("exploration")
        >>> a is not b
        True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def seed_for(self, *names: object) -> int:
        """Return the derived integer seed for a named stream."""
        return derive_seed(self.root_seed, *names)

    def make(self, *names: object) -> np.random.Generator:
        """Return a new generator for a named stream."""
        return np.random.default_rng(self.seed_for(*names))
