"""The Balsa agent: reinforcement learning of the value function (paper §4–§6)."""

from repro.agent.config import BalsaConfig
from repro.agent.environment import BalsaEnvironment
from repro.agent.experience import ExecutionRecord, ExperienceBuffer
from repro.agent.exploration import (
    CountBasedExploration,
    EpsilonGreedyExploration,
    ExplorationStrategy,
    NoExploration,
    make_exploration,
)
from repro.agent.timeout_policy import TimeoutPolicy
from repro.agent.history import IterationMetrics, TrainingHistory
from repro.agent.balsa import BalsaAgent

__all__ = [
    "BalsaConfig",
    "BalsaEnvironment",
    "ExecutionRecord",
    "ExperienceBuffer",
    "CountBasedExploration",
    "EpsilonGreedyExploration",
    "ExplorationStrategy",
    "NoExploration",
    "make_exploration",
    "TimeoutPolicy",
    "IterationMetrics",
    "TrainingHistory",
    "BalsaAgent",
]
