"""A small from-scratch neural-network substrate (numpy only).

The paper implements its value networks as tree convolution networks in
PyTorch (§7).  PyTorch is unavailable offline, so this package provides the
required pieces with explicit forward/backward passes:

- dense layers, ReLU, dropout (:mod:`repro.nn.layers`);
- mean-squared-error loss (:mod:`repro.nn.losses`);
- SGD and Adam optimizers (:mod:`repro.nn.optim`);
- Neo-style tree convolution with dynamic max pooling
  (:mod:`repro.nn.tree_conv`);
- early stopping on a validation split (:mod:`repro.nn.early_stopping`),
  matching the paper's "sample 10% of experience data as a validation set for
  early stopping".
"""

from repro.nn.layers import Dropout, Linear, Parameter, ReLU
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.tree_conv import DynamicMaxPool, TreeBatch, TreeConvLayer
from repro.nn.early_stopping import EarlyStopping

__all__ = [
    "Dropout",
    "Linear",
    "Parameter",
    "ReLU",
    "mse_loss",
    "Adam",
    "Optimizer",
    "SGD",
    "DynamicMaxPool",
    "TreeBatch",
    "TreeConvLayer",
    "EarlyStopping",
]
