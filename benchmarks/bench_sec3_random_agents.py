"""§3 motivation experiment: random agents vs simulation bootstrapping.

Paper: the median of 6 randomly initialised agents is 45x slower than the
expert (worst 79x); bootstrapping from the minimal simulator shrinks the gap
to at most 5.8x with no real execution.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_random_vs_sim_bootstrap(benchmark, scale):
    result = run_once(
        benchmark, experiments.run_random_vs_sim_bootstrap, scale, num_random_agents=4
    )
    print()
    print(
        format_table(
            ["agent", "slowdown vs expert"],
            [
                ["random (median)", result["random_median_slowdown"]],
                ["random (max)", result["random_max_slowdown"]],
                ["sim-bootstrapped", result["sim_bootstrap_slowdown"]],
            ],
            title="Section 3: workload slowdown vs the expert optimizer",
        )
    )
    assert result["random_median_slowdown"] > 1.0
    assert result["sim_bootstrap_slowdown"] > 0.0
