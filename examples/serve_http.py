"""Serve the planning stack over HTTP: the full gateway, end to end.

Builds a small JOB-like benchmark, stands up the serving stack — planner
service, persisted model registry, live-traffic shadower — and boots the
stdlib-only HTTP gateway.  In ``--smoke`` mode the script then exercises the
API against itself (plan by name, plan a structural query, metrics, models,
promote + automatic-shadow arming, rollback) and exits; without it the
gateway serves until interrupted.

Run with::

    python examples/serve_http.py --smoke            # self-exercise and exit
    python examples/serve_http.py --port 8080        # serve until Ctrl-C

With ``--persist-dir``, a restart resumes the last promoted model::

    python examples/serve_http.py --persist-dir /tmp/repro-models --smoke
"""

from __future__ import annotations

import argparse
import json
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.costmodel.cout import CoutCostModel
from repro.lifecycle import LifecycleError, ModelRegistry
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer, TrafficShadower
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark


def http(method: str, url: str, payload: dict | None = None) -> tuple[int, dict]:
    """One JSON exchange against the gateway."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def smoke(base_url: str, query_names: list[str]) -> None:
    """Exercise every endpoint once and print what happened."""
    status, body = http("GET", f"{base_url}/healthz")
    print(f"GET /healthz -> {status}: serving v{body['serving_version']}")

    status, body = http("POST", f"{base_url}/v1/plan", {"query": query_names[0], "k": 2})
    print(
        f"POST /v1/plan ({query_names[0]!r}) -> {status}: "
        f"{len(body['plans'])} plans, best predicted "
        f"{body['predicted_latencies'][0]}"
    )

    status, body = http(
        "POST", f"{base_url}/v1/plan_many",
        {"requests": [{"query": name} for name in query_names]},
    )
    print(f"POST /v1/plan_many -> {status}: {len(body['results'])} results")

    status, body = http("GET", f"{base_url}/v1/metrics")
    default = body["planners"]["default"]
    print(
        f"GET /v1/metrics -> {status}: {default['requests']} requests, "
        f"{default['cache_hits']} cache hits, shadow observed "
        f"{body['shadow']['observed'] if body['shadow'] else 0}"
    )

    status, body = http("GET", f"{base_url}/v1/models")
    print(
        f"GET /v1/models -> {status}: versions {body['versions']}, "
        f"serving v{body['serving_version']}"
    )
    candidates = [v for v in body["versions"] if v != body["serving_version"]]
    if candidates:
        target = candidates[-1]
        status, body = http(
            "POST", f"{base_url}/v1/models/promote", {"version": target}
        )
        print(
            f"POST /v1/models/promote v{target} -> {status}: serving "
            f"v{body['serving_version']} (shadow armed: "
            f"{body.get('shadow_armed', False)})"
        )
        # A little live traffic for the shadower to sample...
        for name in query_names:
            http("POST", f"{base_url}/v1/plan", {"query": name})
        time.sleep(0.2)
        status, body = http("POST", f"{base_url}/v1/models/rollback")
        print(
            f"POST /v1/models/rollback -> {status}: serving "
            f"v{body['serving_version']}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--persist-dir", type=Path, default=None,
        help="registry directory; restarts resume the last promoted model",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="exercise every endpoint against the booted gateway, then exit",
    )
    args = parser.parse_args()

    # 1. The workload and the serving stack.
    benchmark = make_job_benchmark(
        fact_rows=400, num_queries=12, num_templates=4, test_size=3,
        seed=0, size_range=(3, 5),
    )
    queries = benchmark.all_queries()
    network = ValueNetwork(
        benchmark.featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=0,
        ),
    )
    planner = BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)
    service = PlannerService(network, planner=planner, max_workers=4)

    # 2. The model registry: resume a persisted serving chain when possible.
    registry = None
    if args.persist_dir is not None:
        try:
            registry = ModelRegistry.load_persisted(args.persist_dir)
            print(
                f"resumed registry from {args.persist_dir}: serving "
                f"v{registry.serving_version}, versions {registry.versions()}"
            )
        except LifecycleError:
            pass
    if registry is None:
        registry = ModelRegistry(persist_dir=args.persist_dir)
        baseline = registry.register(network, source="baseline")
        registry.promote(baseline.version)
        # A second registered (not promoted) version gives the promote
        # endpoint something to work with.
        registry.register(network.clone(), source="candidate")

    # 3. Live-traffic shadow scoring with automatic rollback.
    shadower = TrafficShadower(
        service,
        registry,
        CoutCostModel(benchmark.estimator).cost,
        sample_fraction=0.25,
        max_regression=2.0,
        max_total_regression=1.25,
        planner=planner,
        featurizer=benchmark.featurizer,
    )

    gateway = PlanningServer(
        service,
        registry=registry,
        shadower=shadower,
        planner_registry=None,
        queries=queries,
        featurizer=benchmark.featurizer,
        host=args.host,
        port=args.port,
    ).start()
    print(f"gateway listening on {gateway.base_url}")
    print(f"  try: curl -s {gateway.base_url}/healthz")

    try:
        if args.smoke:
            smoke(gateway.base_url, [query.name for query in queries[:5]])
            print("smoke: every endpoint answered")
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        gateway.close()
        shadower.close()
        service.close()


if __name__ == "__main__":
    main()
