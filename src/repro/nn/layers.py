"""Dense layers with explicit forward/backward passes.

Each layer caches whatever its backward pass needs during ``forward`` and
returns input gradients from ``backward``.  Parameters are
:class:`Parameter` objects (value + accumulated gradient) consumed by the
optimizers in :mod:`repro.nn.optim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import new_rng


@dataclass
class Parameter:
    """A trainable tensor and its gradient accumulator.

    Attributes:
        name: Human-readable identifier (used in checkpoints).
        value: The parameter values.
        grad: Accumulated gradient of the current backward pass.
    """

    name: str
    value: np.ndarray
    grad: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        """Number of scalar parameters."""
        return int(self.value.size)


class Layer:
    """Base class for layers."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (may be empty)."""
        return []

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate gradients; accumulates parameter grads, returns input grads."""
        raise NotImplementedError


class Linear(Layer):
    """A fully connected layer ``y = x @ W^T + b``.

    Args:
        in_features: Input dimensionality.
        out_features: Output dimensionality.
        rng: Seed or generator for He-uniform initialisation.
        name: Prefix for parameter names.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = 0,
        name: str = "linear",
    ):
        generator = new_rng(rng)
        bound = np.sqrt(6.0 / in_features)
        weight = generator.uniform(-bound, bound, size=(out_features, in_features))
        self.weight = Parameter(f"{name}.weight", weight.astype(np.float64))
        self.bias = Parameter(f"{name}.bias", np.zeros(out_features, dtype=np.float64))
        self._input: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = inputs
        return inputs @ self.weight.value.T + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        flat_in = self._input.reshape(-1, self._input.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_grad.T @ flat_in
        self.bias.grad += flat_grad.sum(axis=0)
        return grad_output @ self.weight.value


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Dropout(Layer):
    """Inverted dropout (active only when ``training=True``).

    Args:
        rate: Probability of zeroing an activation.
        rng: Seed or generator.
    """

    def __init__(self, rate: float = 0.1, rng: int | np.random.Generator | None = 0):
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self._rng = new_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
