"""Shared fixtures: a small synthetic database, queries and derived objects.

Fixtures are session-scoped where safe (the database and statistics are
read-only) so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.cardinality.estimator import HistogramEstimator
from repro.catalog.datagen import generate_database
from repro.catalog.imdb import make_imdb_schema
from repro.catalog.tpch import make_tpch_schema
from repro.execution.engine import ExecutionEngine
from repro.featurization.featurizer import QueryPlanFeaturizer
from repro.sql.expr import ComparisonOp, FilterPredicate, JoinPredicate
from repro.sql.query import Query, TableRef


@pytest.fixture(scope="session")
def imdb_database():
    """A small IMDb-like database with PK/FK indexes built."""
    schema = make_imdb_schema(fact_rows=500)
    database = generate_database(schema, scale=1.0, seed=7)
    database.build_join_indexes()
    return database


@pytest.fixture(scope="session")
def tpch_database():
    """A small TPC-H-like database with PK/FK indexes built."""
    schema = make_tpch_schema(base_rows=300)
    database = generate_database(schema, scale=1.0, seed=7)
    database.build_join_indexes()
    return database


@pytest.fixture(scope="session")
def engine(imdb_database):
    """Execution engine over the IMDb-like database."""
    return ExecutionEngine(imdb_database)


@pytest.fixture(scope="session")
def estimator(imdb_database):
    """Histogram cardinality estimator over the IMDb-like database."""
    return HistogramEstimator(imdb_database)


@pytest.fixture(scope="session")
def featurizer(imdb_database, estimator):
    """Query/plan featuriser over the IMDb-like schema."""
    return QueryPlanFeaturizer(imdb_database.schema, estimator)


def make_three_table_query(name: str = "q3") -> Query:
    """title ⋈ movie_companies ⋈ company_name with two filters."""
    return Query(
        name=name,
        tables=(
            TableRef("title", "t"),
            TableRef("movie_companies", "mc"),
            TableRef("company_name", "cn"),
        ),
        joins=(
            JoinPredicate("t", "id", "mc", "movie_id"),
            JoinPredicate("mc", "company_id", "cn", "id"),
        ),
        filters=(
            FilterPredicate("t", "production_year", ComparisonOp.GT, 1980),
            FilterPredicate("cn", "country_code", ComparisonOp.EQ, 2),
        ),
    )


def make_five_table_query(name: str = "q5") -> Query:
    """A 5-way star join around title with three filters."""
    return Query(
        name=name,
        tables=(
            TableRef("title", "t"),
            TableRef("movie_companies", "mc"),
            TableRef("company_name", "cn"),
            TableRef("movie_info", "mi"),
            TableRef("info_type", "it"),
        ),
        joins=(
            JoinPredicate("t", "id", "mc", "movie_id"),
            JoinPredicate("mc", "company_id", "cn", "id"),
            JoinPredicate("t", "id", "mi", "movie_id"),
            JoinPredicate("mi", "info_type_id", "it", "id"),
        ),
        filters=(
            FilterPredicate("t", "production_year", ComparisonOp.BETWEEN, (1950, 2000)),
            FilterPredicate("cn", "country_code", ComparisonOp.IN, (0, 1, 2)),
            FilterPredicate("it", "info", ComparisonOp.EQ, 1),
        ),
    )


@pytest.fixture(scope="session")
def three_table_query():
    """A 3-table SPJ query."""
    return make_three_table_query()


@pytest.fixture(scope="session")
def five_table_query():
    """A 5-table SPJ query."""
    return make_five_table_query()
