"""Tests for the serving gateway: wire codecs, HTTP endpoints, live shadow
scoring with automatic rollback, and registry persistence restore."""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.request

import pytest

from repro.costmodel.cout import CoutCostModel
from repro.lifecycle import ModelLifecycle, ModelRegistry, ShadowEvaluator
from repro.model.trainer import ValueNetworkTrainer
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.optimizer.quickpick import random_plan
from repro.planning.adapters import RandomPlanner
from repro.planning.envelope import PlanRequest, PlanResult
from repro.planning.registry import PlannerRegistry
from repro.search.beam import BeamSearchPlanner
from repro.server import (
    PlanningServer,
    TrafficShadower,
    WireFormatError,
    plan_from_json_dict,
    plan_request_from_json_dict,
    plan_result_from_json_dict,
    plan_to_json_dict,
    query_from_json_dict,
    query_to_json_dict,
)
from repro.service.metrics import ServiceMetrics
from repro.service.service import PlannerService
from repro.utils.rng import derive_seed, new_rng
from repro.workloads.benchmark import make_job_benchmark
from tests.conftest import make_three_table_query

# ---------------------------------------------------------------------- #
# Shared serving stack (module scope: building + training is the expensive
# part; every gateway test runs against this one stack)
# ---------------------------------------------------------------------- #


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=300, num_queries=10, num_templates=4, test_size=3,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def queries(bench):
    return list(bench.train_queries)


@pytest.fixture(scope="module")
def cost_model(bench):
    return CoutCostModel(bench.estimator)


@pytest.fixture(scope="module")
def trained_network(bench, queries, cost_model) -> ValueNetwork:
    """A network fitted to cout costs so its plan ranking is meaningful."""
    examples, labels = [], []
    for query in queries:
        seen: set[str] = set()
        for index in range(40):
            plan = random_plan(query, new_rng(derive_seed(0, query.name, index)))
            if plan.fingerprint() in seen:
                continue
            seen.add(plan.fingerprint())
            examples.append(bench.featurizer.featurize(query, plan))
            labels.append(cost_model.cost(query, plan))
    network = ValueNetwork(
        bench.featurizer,
        ValueNetworkConfig(
            query_hidden=32, query_embedding=16, tree_channels=(32, 16),
            head_hidden=16, seed=0,
        ),
    )
    ValueNetworkTrainer(
        network, learning_rate=3e-3, max_epochs=60, validation_fraction=0.0, seed=0
    ).fit(examples, labels)
    return network


def sabotage(network: ValueNetwork) -> ValueNetwork:
    """A clone whose prediction order is inverted (an injected regression)."""
    bad = network.clone()
    bad.head_fc2.weight.value = -bad.head_fc2.weight.value
    bad.head_fc2.bias.value = -bad.head_fc2.bias.value
    bad.bump_version()
    return bad


@pytest.fixture(scope="module")
def stack(bench, queries, cost_model, trained_network, tmp_path_factory):
    """Service + persisted registry + shadower + gateway, started once."""
    persist_dir = tmp_path_factory.mktemp("gateway-registry")
    service = PlannerService(
        trained_network, planner=small_planner(), max_workers=2, cache_capacity=512
    )
    registry = ModelRegistry(retention=8, persist_dir=persist_dir)
    baseline = registry.register(trained_network, source="baseline")
    registry.promote(baseline.version)
    shadower = TrafficShadower(
        service,
        registry,
        cost_model.cost,
        sample_fraction=1.0,
        buffer_capacity=64,
        max_regression=1.3,
        max_total_regression=1.25,
        min_samples=3,
        window=16,
        planner=small_planner(),
        featurizer=bench.featurizer,
    )
    planner_registry = PlannerRegistry()
    planner_registry.register("random", RandomPlanner(seed=0))
    gateway = PlanningServer(
        service,
        registry=registry,
        shadower=shadower,
        planner_registry=planner_registry,
        queries=bench.all_queries(),
        featurizer=bench.featurizer,
    ).start()
    yield {
        "service": service,
        "registry": registry,
        "shadower": shadower,
        "gateway": gateway,
        "baseline_version": baseline.version,
        "persist_dir": persist_dir,
    }
    gateway.close()
    shadower.close()
    service.close()


def http(method: str, url: str, payload=None, timeout: float = 30.0):
    """One JSON HTTP exchange; returns (status, decoded body)."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


# ---------------------------------------------------------------------- #
# Wire codecs: round trips
# ---------------------------------------------------------------------- #
class TestWireRoundTrips:
    def test_query_round_trip_preserves_fingerprint(self, queries):
        for query in queries:
            body = query_to_json_dict(query)
            json.dumps(body, allow_nan=False)  # strictly JSON-safe
            restored = query_from_json_dict(body)
            assert restored.fingerprint() == query.fingerprint()
            assert restored.name == query.name

    def test_plan_round_trip_preserves_fingerprint(self, queries):
        for query in queries:
            for index in range(5):
                plan = random_plan(
                    query, new_rng(derive_seed(1, query.name, index))
                )
                body = plan_to_json_dict(plan)
                json.dumps(body, allow_nan=False)
                assert plan_from_json_dict(body).fingerprint() == plan.fingerprint()

    def test_plan_request_round_trip(self, queries):
        request = PlanRequest(
            query=queries[0],
            k=3,
            deadline_seconds=2.5,
            priority=7,
            knobs={"explore": True, "arms": 3, "eps": float("nan")},
        )
        body = request.to_json_dict()
        json.dumps(body, allow_nan=False)
        restored = PlanRequest.from_json_dict(body)
        assert restored.query.fingerprint() == request.query.fingerprint()
        assert restored.k == 3
        assert restored.deadline_seconds == 2.5
        assert restored.priority == 7
        knobs = dict(restored.knobs)
        # Non-finite knob values survive the wire as floats, not spellings.
        assert math.isnan(knobs.pop("eps"))
        assert knobs == {"explore": True, "arms": 3}

    def test_plan_result_round_trip_with_non_finite_predictions(self, queries):
        query = queries[0]
        plans = [
            random_plan(query, new_rng(derive_seed(2, query.name, index)))
            for index in range(3)
        ]
        result = PlanResult(
            plans=plans,
            predicted_latencies=[1.5, float("nan"), float("inf")],
            planning_seconds=0.25,
            states_expanded=11,
            plans_scored=29,
            planner_name="beam",
            deadline_exceeded=True,
            cacheable=False,
            extra={"arm_index": 2, "note": "x"},
        )
        body = result.to_json_dict()
        json.dumps(body, allow_nan=False)
        restored = PlanResult.from_json_dict(body)
        assert [p.fingerprint() for p in restored.plans] == [
            p.fingerprint() for p in plans
        ]
        assert restored.predicted_latencies[0] == 1.5
        assert math.isnan(restored.predicted_latencies[1])
        assert math.isinf(restored.predicted_latencies[2])
        assert restored.planning_seconds == 0.25
        assert restored.states_expanded == 11
        assert restored.plans_scored == 29
        assert restored.planner_name == "beam"
        assert restored.deadline_exceeded is True
        assert restored.cacheable is False
        assert restored.extra == {"arm_index": 2, "note": "x"}

    def test_plan_result_negative_infinity_round_trip(self):
        result = PlanResult(plans=[], predicted_latencies=[float("-inf")])
        restored = PlanResult.from_json_dict(result.to_json_dict())
        assert restored.predicted_latencies[0] == -math.inf

    def test_random_request_property_round_trip(self, queries):
        """Property-style sweep: random (query, k, deadline, knobs) combos."""
        for seed in range(20):
            rng = new_rng(derive_seed(3, seed))
            query = queries[int(rng.integers(len(queries)))]
            request = PlanRequest(
                query=query,
                k=int(rng.integers(1, 6)),
                deadline_seconds=(
                    None if rng.random() < 0.5 else float(rng.random() * 10)
                ),
                priority=int(rng.integers(-3, 9)),
                knobs={f"knob{int(rng.integers(4))}": float(rng.random())},
            )
            restored = PlanRequest.from_json_dict(
                json.loads(json.dumps(request.to_json_dict(), allow_nan=False))
            )
            assert restored.query.fingerprint() == query.fingerprint()
            assert restored.k == request.k
            if request.deadline_seconds is None:
                assert restored.deadline_seconds is None
            else:
                assert restored.deadline_seconds == pytest.approx(
                    request.deadline_seconds
                )
            assert restored.priority == request.priority
            assert dict(restored.knobs) == dict(request.knobs)

    def test_service_metrics_round_trip(self):
        metrics = ServiceMetrics(
            requests=10, cache_hits=4, cache_misses=6, swaps=2,
            total_planning_seconds=1.25, wall_seconds=3.5,
        )
        metrics.cache.hits = 4
        metrics.cache.size = 3
        metrics.scoring.requests = 17
        metrics.scoring.max_batch_examples = 64
        restored = ServiceMetrics.from_json_dict(
            json.loads(json.dumps(metrics.to_json_dict(), allow_nan=False))
        )
        assert restored.requests == 10
        assert restored.cache_hits == 4
        assert restored.swaps == 2
        assert restored.total_planning_seconds == 1.25
        assert restored.cache.hits == 4
        assert restored.cache.size == 3
        assert restored.scoring.requests == 17
        assert restored.scoring.max_batch_examples == 64
        assert restored.hit_rate == pytest.approx(0.4)

    def test_promotion_decision_round_trip(self):
        from repro.lifecycle.shadow import ProbeResult, PromotionDecision

        decision = PromotionDecision(
            candidate_version=3,
            serving_version=2,
            promoted=False,
            reason="live-traffic regression",
            probes=[ProbeResult("q1", 10.0, 25.0, 2.5)],
            max_regression=2.5,
            regression_threshold=1.3,
            total_regression=2.5,
            total_threshold=1.3,
        )
        restored = PromotionDecision.from_json_dict(
            json.loads(json.dumps(decision.to_json_dict(), allow_nan=False))
        )
        assert restored.candidate_version == 3
        assert restored.serving_version == 2
        assert restored.promoted is False
        assert restored.reason == "live-traffic regression"
        assert restored.probes[0].query_name == "q1"
        assert restored.probes[0].regression == 2.5
        assert restored.created_at == pytest.approx(decision.created_at)


# ---------------------------------------------------------------------- #
# Wire codecs: malformed payload rejection
# ---------------------------------------------------------------------- #
class TestWireRejection:
    @pytest.mark.parametrize(
        "payload",
        [
            [],  # not an object
            {"query": None},
            {"query": {"name": "q", "tables": []}},  # no tables
            {"query": {"name": "q", "tables": "title"}},  # tables not a list
            {"query": {"name": 3, "tables": [{"table": "t", "alias": "t"}]}},
        ],
    )
    def test_bad_request_shapes(self, payload):
        with pytest.raises(WireFormatError):
            plan_request_from_json_dict(payload)

    def test_by_name_query_without_resolver(self):
        with pytest.raises(WireFormatError, match="by-name"):
            plan_request_from_json_dict({"query": "q7b"})

    def test_by_name_query_unknown_name(self):
        with pytest.raises(WireFormatError, match="unknown query name"):
            plan_request_from_json_dict(
                {"query": "nope"}, query_resolver={}.__getitem__
            )

    @pytest.mark.parametrize("k", [0, -1, True, "3", 1.5])
    def test_bad_k_rejected(self, k):
        query = query_to_json_dict(make_three_table_query())
        with pytest.raises(WireFormatError):
            plan_request_from_json_dict({"query": query, "k": k})

    def test_unknown_operator_rejected(self):
        body = query_to_json_dict(make_three_table_query())
        body["filters"][0]["op"] = "LIKE"
        with pytest.raises(WireFormatError, match="unknown comparison operator"):
            query_from_json_dict(body)

    def test_between_arity_enforced(self):
        body = query_to_json_dict(make_three_table_query())
        body["filters"].append(
            {"alias": "t", "column": "production_year", "op": "BETWEEN",
             "value": [1, 2, 3]}
        )
        with pytest.raises(WireFormatError, match="BETWEEN"):
            query_from_json_dict(body)

    def test_join_referencing_unknown_alias_rejected(self):
        body = query_to_json_dict(make_three_table_query())
        body["joins"][0]["left_alias"] = "zz"
        with pytest.raises(WireFormatError):
            query_from_json_dict(body)

    def test_plan_with_overlapping_join_inputs_rejected(self):
        scan = {"scan": {"alias": "t", "table": "title", "operator": "SeqScan"}}
        with pytest.raises(WireFormatError):
            plan_from_json_dict(
                {"join": {"operator": "HashJoin", "left": scan, "right": scan}}
            )

    def test_plan_missing_kind_rejected(self):
        with pytest.raises(WireFormatError, match="scan.*join|join.*scan"):
            plan_from_json_dict({"table": "title"})

    def test_bad_prediction_value_rejected(self):
        with pytest.raises(WireFormatError, match="predicted_latencies"):
            plan_result_from_json_dict(
                {"plans": [], "predicted_latencies": ["soon"]}
            )

    def test_bad_deadline_rejected(self):
        query = query_to_json_dict(make_three_table_query())
        with pytest.raises(WireFormatError):
            plan_request_from_json_dict({"query": query, "deadline_seconds": "fast"})


# ---------------------------------------------------------------------- #
# Gateway endpoints over real HTTP
# ---------------------------------------------------------------------- #
class TestGatewayEndpoints:
    def test_health(self, stack):
        status, body = http("GET", f"{stack['gateway'].base_url}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["serving_version"] == stack["registry"].serving_version
        assert "default" in body["planners"] and "random" in body["planners"]

    def test_plan_by_name_parity_with_in_process_service(self, stack, queries):
        """20 HTTP plans must match the in-process service exactly."""
        gateway, service = stack["gateway"], stack["service"]
        checked = 0
        for k in (1, 2, 3):
            for query in queries:
                status, body = http(
                    "POST",
                    f"{gateway.base_url}/v1/plan",
                    {"query": query.name, "k": k},
                )
                assert status == 200, body
                inproc = service.plan(PlanRequest(query=query, k=k))
                assert [
                    plan_from_json_dict(p).fingerprint() for p in body["plans"]
                ] == [p.fingerprint() for p in inproc.plans]
                assert body["predicted_latencies"] == pytest.approx(
                    inproc.predicted_latencies
                )
                assert body["planner_name"] == inproc.planner_name
                assert body["query_name"] == query.name
                checked += 1
        assert checked == 3 * len(queries) >= 20

    def test_plan_structural_query(self, stack, queries):
        body = {"query": query_to_json_dict(queries[0]), "k": 1}
        status, reply = http(
            "POST", f"{stack['gateway'].base_url}/v1/plan", body
        )
        assert status == 200
        assert reply["plans"], reply
        assert reply["stats"]["planner_name"] == reply["planner_name"]

    def test_plan_many_preserves_order(self, stack, queries):
        requests = [{"query": query.name, "k": 1} for query in queries]
        status, reply = http(
            "POST",
            f"{stack['gateway'].base_url}/v1/plan_many",
            {"requests": requests},
        )
        assert status == 200
        assert [entry["query_name"] for entry in reply["results"]] == [
            query.name for query in queries
        ]

    def test_plan_routed_to_registered_planner(self, stack, queries):
        status, reply = http(
            "POST",
            f"{stack['gateway'].base_url}/v1/plan",
            {"query": queries[0].name, "k": 2, "planner": "random"},
        )
        assert status == 200
        assert reply["planner_name"] == "random"
        # Samplers score nothing: NaN survives the wire as its spelling.
        assert reply["predicted_latencies"] == ["NaN", "NaN"]

    def test_unknown_planner_404(self, stack, queries):
        status, reply = http(
            "POST",
            f"{stack['gateway'].base_url}/v1/plan",
            {"query": queries[0].name, "planner": "oracle"},
        )
        assert status == 404
        assert reply["kind"] == "unknown_planner"

    def test_unknown_query_name_400(self, stack):
        status, reply = http(
            "POST", f"{stack['gateway'].base_url}/v1/plan", {"query": "qqq"}
        )
        assert status == 400
        assert reply["kind"] == "bad_request"

    def test_invalid_json_400(self, stack):
        request = urllib.request.Request(
            f"{stack['gateway'].base_url}/v1/plan",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_expired_deadline_504(self, stack, queries):
        status, reply = http(
            "POST",
            f"{stack['gateway'].base_url}/v1/plan",
            {"query": queries[0].name, "deadline_seconds": 0},
        )
        assert status == 504
        assert reply["kind"] == "admission"
        assert reply["reason"] == "deadline_expired"

    def test_unknown_endpoint_404(self, stack):
        status, reply = http("GET", f"{stack['gateway'].base_url}/v2/plan")
        assert status == 404

    def test_unknown_post_with_body_does_not_corrupt_keep_alive(self, stack, queries):
        """An unconsumed request body must never be parsed as the next
        request line: the error reply either drained it or closes the
        connection (Connection: close)."""
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", stack["gateway"].port, timeout=10
        )
        try:
            body = json.dumps({"junk": True})
            connection.request(
                "POST", "/v1/nope", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = response.read()
            assert response.status == 404, payload
            # Either the body was drained (keep-alive intact) or the server
            # told us to reconnect; both keep the framing sound.
            if response.will_close:
                connection.close()
                connection.connect()
            connection.request(
                "POST", "/v1/plan",
                body=json.dumps({"query": queries[0].name}),
                headers={"Content-Type": "application/json"},
            )
            second = connection.getresponse()
            second.read()
            assert second.status == 200  # parsed as a real request
        finally:
            connection.close()

    def test_error_responses_are_counted_in_gateway_metrics(self, stack):
        base = stack["gateway"].base_url
        http("GET", f"{base}/v2/nowhere")  # 404, no route
        request = urllib.request.Request(
            f"{base}/v1/plan", data=b"{bad", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request, timeout=10)  # 400, bad JSON
        status, body = http("GET", f"{base}/v1/metrics")
        assert status == 200
        by_status = body["gateway"]["responses_by_status"]
        assert by_status.get("404", 0) >= 1
        assert by_status.get("400", 0) >= 1

    def test_metrics_endpoint(self, stack, queries):
        http("POST", f"{stack['gateway'].base_url}/v1/plan", {"query": queries[0].name})
        status, body = http("GET", f"{stack['gateway'].base_url}/v1/metrics")
        assert status == 200
        default = body["planners"]["default"]
        assert default["requests"] > 0
        # The faithful wire form reconstructs into a real report.
        restored = ServiceMetrics.from_json_dict(default)
        assert restored.requests == default["requests"]
        assert body["gateway"]["requests_by_endpoint"]["/v1/plan"] >= 1
        assert body["shadow"] is not None
        assert body["shadow"]["observed"] >= 1

    def test_models_endpoint(self, stack):
        status, body = http("GET", f"{stack['gateway'].base_url}/v1/models")
        assert status == 200
        registry = stack["registry"]
        assert body["serving_version"] == registry.serving_version
        assert body["versions"] == registry.versions()
        assert body["serving_history"] == registry.serving_history()
        assert {s["version"] for s in body["snapshots"]} == set(registry.versions())


class TestGatewayWithoutRegistry:
    """A minimal protocol-mode gateway: capacity rejection and missing ops."""

    @pytest.fixture()
    def tiny_gateway(self):
        service = PlannerService(
            planner=RandomPlanner(seed=0), max_workers=1, max_pending=0
        )
        gateway = PlanningServer(service).start()
        yield gateway
        gateway.close()
        service.close()

    def test_over_capacity_429(self, tiny_gateway):
        body = {"query": query_to_json_dict(make_three_table_query())}
        status, reply = http("POST", f"{tiny_gateway.base_url}/v1/plan", body)
        assert status == 429
        assert reply["reason"] == "over_capacity"

    def test_models_unavailable_503(self, tiny_gateway):
        status, reply = http("GET", f"{tiny_gateway.base_url}/v1/models")
        assert status == 503

    def test_promote_unavailable_503(self, tiny_gateway):
        status, reply = http(
            "POST", f"{tiny_gateway.base_url}/v1/models/promote", {"version": 1}
        )
        assert status == 503


# ---------------------------------------------------------------------- #
# Live shadow scoring: sampling mechanics
# ---------------------------------------------------------------------- #
class TestTrafficShadowerSampling:
    def test_stride_sampling_and_ring_bound(self, stack, queries):
        service, registry = stack["service"], stack["registry"]
        shadower = TrafficShadower(
            service,
            registry,
            lambda query, plan: 1.0,
            sample_fraction=0.5,
            buffer_capacity=2,
            featurizer=None,
        )
        try:
            for _ in range(10):
                shadower.observe(queries[0])
            stats = shadower.stats()
            assert stats.observed == 10
            assert stats.sampled == 5
            assert stats.dropped == 3  # ring of 2: the other 3 were evicted
            assert stats.armed is False
        finally:
            shadower.close()

    def test_watch_without_baseline_disarms(self, stack):
        shadower = stack["shadower"]
        shadower.watch(stack["baseline_version"], None)
        assert shadower.armed is False

    def test_observe_after_close_is_noop(self, stack, queries):
        service, registry = stack["service"], stack["registry"]
        shadower = TrafficShadower(service, registry, lambda q, p: 1.0)
        shadower.close()
        shadower.observe(queries[0])  # must not raise
        assert shadower.stats().observed == 0


# ---------------------------------------------------------------------- #
# The end-to-end acceptance flow
# ---------------------------------------------------------------------- #
class TestEndToEndRollback:
    def test_bad_promotion_rolled_back_by_live_traffic(
        self, stack, queries, trained_network
    ):
        """Promote a sabotaged candidate over HTTP; live traffic must trip
        the automatic rollback with zero failed foreground requests."""
        gateway = stack["gateway"]
        registry = stack["registry"]
        shadower = stack["shadower"]
        baseline_version = registry.serving_version
        bad = registry.register(sabotage(trained_network), source="sabotaged")

        status, reply = http(
            "POST",
            f"{gateway.base_url}/v1/models/promote",
            {"version": bad.version},
        )
        assert status == 200, reply
        assert reply["serving_version"] == bad.version
        assert reply["previous_serving_version"] == baseline_version
        assert reply["shadow_armed"] is True
        assert registry.serving_version == bad.version

        # Foreground traffic: every request must keep succeeding while the
        # shadower replans samples off the request path.
        failures = 0
        deadline = time.monotonic() + 60.0
        tripped = False
        while time.monotonic() < deadline:
            for query in queries:
                plan_status, plan_body = http(
                    "POST", f"{gateway.base_url}/v1/plan", {"query": query.name}
                )
                if plan_status != 200 or not plan_body.get("plans"):
                    failures += 1
            shadower.drain(timeout=10.0)
            if registry.serving_version == baseline_version:
                tripped = True
                break
        assert tripped, (
            f"live traffic never tripped the rollback: {shadower.stats()}"
        )
        assert failures == 0

        # The audit trail records the live-traffic verdict.
        live_decisions = [
            decision
            for decision in registry.decisions()
            if decision.candidate_version == bad.version and not decision.promoted
        ]
        assert live_decisions
        assert "live-traffic" in live_decisions[-1].reason
        assert "automatic rollback" in live_decisions[-1].reason
        assert live_decisions[-1].probes  # the sampled queries that tripped it

        stats = shadower.stats()
        assert stats.rollbacks == 1
        assert stats.armed is False

        # The ops surface agrees: serving is the restored baseline.
        status, body = http("GET", f"{gateway.base_url}/v1/models")
        assert status == 200
        assert body["serving_version"] == baseline_version
        assert body["serving_history"][-1] == baseline_version
        decisions = body["decisions"]
        assert any("live-traffic" in d["reason"] for d in decisions)

        # And the restored model actually answers.
        plan_status, plan_body = http(
            "POST", f"{gateway.base_url}/v1/plan", {"query": queries[0].name}
        )
        assert plan_status == 200 and plan_body["plans"]

    def test_explicit_rollback_endpoint(self, stack, trained_network):
        gateway, registry = stack["gateway"], stack["registry"]
        serving_before = registry.serving_version
        clean = registry.register(trained_network.clone(), source="clean")
        status, reply = http(
            "POST",
            f"{gateway.base_url}/v1/models/promote",
            {"version": clean.version},
        )
        assert status == 200
        assert registry.serving_version == clean.version
        status, reply = http("POST", f"{gateway.base_url}/v1/models/rollback")
        assert status == 200, reply
        assert reply["serving_version"] == serving_before
        assert reply["rolled_back_from"] == clean.version
        assert registry.serving_version == serving_before
        assert stack["shadower"].armed is False

    def test_promote_unknown_version_404(self, stack):
        status, reply = http(
            "POST", f"{stack['gateway'].base_url}/v1/models/promote", {"version": 999}
        )
        assert status == 404
        assert reply["kind"] == "unknown_version"

    def test_compare_and_rollback_guard(self, stack):
        """A stale live-traffic verdict must not unseat a fresh promotion."""
        from repro.lifecycle import LifecycleError

        registry = stack["registry"]
        serving = registry.serving_version
        with pytest.raises(LifecycleError, match="rollback aborted"):
            registry.rollback(expected_serving=serving + 1000)
        assert registry.serving_version == serving


# ---------------------------------------------------------------------- #
# Registry persistence: restart resumes the serving chain
# ---------------------------------------------------------------------- #
class TestPersistedRestore:
    def test_load_persisted_restores_chain(self, stack, bench):
        registry = stack["registry"]
        restored = ModelRegistry.load_persisted(stack["persist_dir"])
        assert restored.serving_version == registry.serving_version
        # Rollback targets survive the restart (the chain, not just the tip).
        assert restored.serving_history()[-1] == registry.serving_history()[-1]
        assert set(restored.versions()) >= set(restored.serving_history())
        network = restored.serving().restore(bench.featurizer)
        assert network is not None
        # Version numbering continues where the previous process stopped.
        fresh = restored.register(network, source="post-restart")
        assert fresh.version > max(registry.versions())

    def test_load_persisted_empty_dir_raises(self, tmp_path):
        from repro.lifecycle import LifecycleError

        with pytest.raises(LifecycleError):
            ModelRegistry.load_persisted(tmp_path)

    @pytest.mark.parametrize("corrupt", ["[]", '"x"', "{not json"])
    def test_load_persisted_survives_corrupt_manifest(
        self, stack, tmp_path, corrupt
    ):
        import shutil

        snapshots = sorted(stack["persist_dir"].glob("model-v*.npz"))
        shutil.copy(snapshots[-1], tmp_path / snapshots[-1].name)
        (tmp_path / "serving.json").write_text(corrupt)
        with pytest.warns(RuntimeWarning, match="manifest"):
            restored = ModelRegistry.load_persisted(tmp_path)
        # Fallback: the newest loadable snapshot is taken as serving.
        assert restored.serving_version == restored.versions()[-1]

    def test_gateway_boot_restores_persisted_serving(
        self, stack, bench, trained_network
    ):
        """A 'restarted' gateway resumes the last promoted model."""
        loaded = ModelRegistry.load_persisted(stack["persist_dir"])
        fresh_network = ValueNetwork(
            bench.featurizer,
            ValueNetworkConfig(
                query_hidden=32, query_embedding=16, tree_channels=(32, 16),
                head_hidden=16, seed=99,
            ),
        )
        service = PlannerService(
            fresh_network, planner=small_planner(), max_workers=1
        )
        try:
            gateway = PlanningServer(
                service, registry=loaded, featurizer=bench.featurizer
            )
            assert gateway.restored_serving_version == loaded.serving_version
            # The service now plans with the persisted weights, not the fresh
            # seed-99 network it was constructed with.
            serving = service.serving_network()
            assert serving is not fresh_network
        finally:
            service.close()


# ---------------------------------------------------------------------- #
# Lifecycle integration: promotions arm the live monitor
# ---------------------------------------------------------------------- #
class _RecordingMonitor:
    def __init__(self):
        self.watched: list[tuple] = []
        self.disarmed = 0

    def watch(self, candidate_version, baseline_version):
        self.watched.append((candidate_version, baseline_version))

    def disarm(self):
        self.disarmed += 1


class TestLifecycleLiveMonitor:
    def test_promotion_arms_and_rollback_disarms(
        self, bench, queries, cost_model, trained_network
    ):
        service = PlannerService(
            trained_network.clone(), planner=small_planner(), max_workers=1
        )
        registry = ModelRegistry(retention=8)
        shadow = ShadowEvaluator(
            queries[:3],
            cost_model.cost,
            max_regression=1.5,
            max_total_regression=1.2,
            planner=small_planner(),
        )
        lifecycle = ModelLifecycle(service, registry, shadow, warm_queries=[])
        monitor = _RecordingMonitor()
        lifecycle.attach_live_monitor(monitor)
        try:
            baseline = lifecycle.baseline()
            candidate = registry.register(
                trained_network.clone(), source="candidate"
            )
            decision = lifecycle.evaluate_and_apply(candidate)
            assert decision.promoted, decision.reason
            assert monitor.watched == [(candidate.version, baseline.version)]
            lifecycle.rollback()
            assert monitor.disarmed == 1
        finally:
            lifecycle.close()
            service.close()

    def test_gateway_wires_shadower_into_lifecycle(
        self, bench, queries, cost_model, trained_network
    ):
        """A gateway given both wires the shadower as the live monitor, and
        the rollback endpoint disarms it even on the lifecycle path."""
        service = PlannerService(
            trained_network.clone(), planner=small_planner(), max_workers=1
        )
        registry = ModelRegistry(retention=8)
        shadow = ShadowEvaluator(
            queries[:2], cost_model.cost, planner=small_planner()
        )
        lifecycle = ModelLifecycle(service, registry, shadow, warm_queries=[])
        shadower = TrafficShadower(
            service, registry, cost_model.cost, featurizer=bench.featurizer,
            lifecycle=lifecycle,
        )
        try:
            baseline = lifecycle.baseline()
            candidate = registry.register(trained_network.clone(), source="c")
            gateway = PlanningServer(
                service, registry=registry, lifecycle=lifecycle,
                shadower=shadower, featurizer=bench.featurizer,
                restore_serving=False,
            )
            assert lifecycle.live_monitor is shadower
            status, reply = gateway.handle_promote({"version": candidate.version})
            assert status == 200 and shadower.armed
            status, reply = gateway.handle_rollback()
            assert status == 200
            assert reply["serving_version"] == baseline.version
            assert shadower.armed is False
        finally:
            shadower.close()
            lifecycle.close()
            service.close()
