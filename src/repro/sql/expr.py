"""Predicate expressions for SPJ queries.

Two predicate kinds exist:

- :class:`FilterPredicate`: a single-table comparison against literal values
  (``t.col <op> value``), where ``op`` is one of :class:`ComparisonOp`.
- :class:`JoinPredicate`: an equi-join between two table aliases
  (``a.col = b.col``).

Filters are evaluated directly against numpy column arrays by
:func:`evaluate_filter`; the same objects are consumed by the histogram
cardinality estimator to derive selectivities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class ComparisonOp(str, enum.Enum):
    """Supported filter comparison operators."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "IN"
    BETWEEN = "BETWEEN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FilterPredicate:
    """A single-table filter ``alias.column <op> value``.

    Attributes:
        alias: Table alias the predicate applies to.
        column: Column name within that table.
        op: Comparison operator.
        value: Literal operand.  For ``IN`` a tuple of values, for ``BETWEEN``
            a ``(low, high)`` tuple, otherwise a scalar.
    """

    alias: str
    column: str
    op: ComparisonOp
    value: object

    def __post_init__(self) -> None:
        if self.op is ComparisonOp.IN and not isinstance(self.value, tuple):
            object.__setattr__(self, "value", tuple(self.value))
        if self.op is ComparisonOp.BETWEEN:
            low, high = self.value
            object.__setattr__(self, "value", (low, high))

    def describe(self) -> str:
        """Render the predicate as a SQL-ish string."""
        if self.op is ComparisonOp.IN:
            vals = ", ".join(repr(v) for v in self.value)
            return f"{self.alias}.{self.column} IN ({vals})"
        if self.op is ComparisonOp.BETWEEN:
            low, high = self.value
            return f"{self.alias}.{self.column} BETWEEN {low!r} AND {high!r}"
        return f"{self.alias}.{self.column} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_alias.left_column = right_alias.right_column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> frozenset[str]:
        """The pair of aliases connected by this predicate."""
        return frozenset((self.left_alias, self.right_alias))

    def column_for(self, alias: str) -> str:
        """Return the join column used on the side of ``alias``."""
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise KeyError(f"alias {alias!r} not part of join predicate {self.describe()}")

    def describe(self) -> str:
        """Render the predicate as a SQL-ish string."""
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )

    def normalized(self) -> "JoinPredicate":
        """Return a canonical ordering (lexicographically smaller alias first)."""
        if (self.left_alias, self.left_column) <= (self.right_alias, self.right_column):
            return self
        return JoinPredicate(
            self.right_alias, self.right_column, self.left_alias, self.left_column
        )


def evaluate_filter(predicate: FilterPredicate, column: np.ndarray) -> np.ndarray:
    """Evaluate ``predicate`` against a numpy column, returning a boolean mask.

    Args:
        predicate: The filter to evaluate.
        column: Array of values for ``predicate.column``.

    Returns:
        Boolean array of the same length as ``column``.
    """
    op = predicate.op
    value = predicate.value
    if op is ComparisonOp.EQ:
        return column == value
    if op is ComparisonOp.NE:
        return column != value
    if op is ComparisonOp.LT:
        return column < value
    if op is ComparisonOp.LE:
        return column <= value
    if op is ComparisonOp.GT:
        return column > value
    if op is ComparisonOp.GE:
        return column >= value
    if op is ComparisonOp.IN:
        return np.isin(column, np.asarray(list(value)))
    if op is ComparisonOp.BETWEEN:
        low, high = value
        return (column >= low) & (column <= high)
    raise ValueError(f"unsupported operator: {op}")


def conjunction_mask(
    predicates: Sequence[FilterPredicate], columns: dict[str, np.ndarray], num_rows: int
) -> np.ndarray:
    """Evaluate a conjunction of filters over a table's columns.

    Args:
        predicates: Filters, all referring to the same table alias.
        columns: Mapping of column name to numpy array.
        num_rows: Number of rows in the table (used when no predicates apply).

    Returns:
        Boolean mask selecting the qualifying rows.
    """
    mask = np.ones(num_rows, dtype=bool)
    for predicate in predicates:
        mask &= evaluate_filter(predicate, columns[predicate.column])
    return mask
