"""The uniform planning envelopes: :class:`PlanRequest` and :class:`PlanResult`.

Every planner in the repository — beam search over the value network, the
classical DP/greedy enumerators, the QuickPick and random samplers, the expert
baselines, and the Bao/Neo agents — speaks the same request/response shape:

- a :class:`PlanRequest` carries the query plus the serving knobs that apply
  to *any* backend: how many plans to return (``k``), an optional planning
  budget (``deadline_seconds``), a scheduling ``priority``, and a free-form
  ``knobs`` mapping for planner-specific switches (e.g. Bao's ``explore``);
- a :class:`PlanResult` carries the plans, their predicted costs/latencies,
  wall-clock planning time, search statistics and the identity of the planner
  that produced it.

The envelopes are deliberately plain dataclasses so they can cross thread and
cache boundaries freely; :class:`~repro.service.service.ServiceResponse` is a
:class:`PlanResult` subtype, which makes cache hits, single-flight joins and
fresh searches indistinguishable in shape.

:class:`AdmissionError` is the typed rejection the serving front door raises
for requests that cannot be admitted (expired deadline, over capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.plans.nodes import PlanNode
from repro.sql.query import Query


class PlanningError(RuntimeError):
    """Base class for planning-API errors."""


class AdmissionError(PlanningError):
    """A request was rejected at the service front door.

    Attributes:
        reason: Machine-readable rejection reason — ``"deadline_expired"`` or
            ``"over_capacity"``.
    """

    def __init__(self, message: str, reason: str = "rejected"):
        super().__init__(message)
        self.reason = reason


class UnknownPlannerError(PlanningError, KeyError):
    """A registry lookup named a planner that is not registered."""


@dataclass
class PlanRequest:
    """One planning request, understood by every registered planner.

    Attributes:
        query: The query to plan.
        k: Maximum number of complete plans to return (planners that produce a
            single plan ignore larger values; samplers and beam search honour
            it).
        deadline_seconds: Optional end-to-end budget in seconds.  Planners
            invoked directly measure it from the moment planning starts; the
            serving layer anchors it at submission, so queue wait consumes
            budget too.  The front door rejects requests whose budget is
            already non-positive with :class:`AdmissionError` and hands the
            *remaining* budget to the planner; budget-aware planners (beam
            search) cut their search off when it runs out.
        priority: Scheduling priority (higher is more urgent).  Recorded on
            request stats; reserved for priority-aware schedulers.
        knobs: Free-form per-request planner switches (e.g. ``{"explore":
            True}`` for Bao's ε-greedy arm selection).
    """

    query: Query
    k: int = 1
    deadline_seconds: float | None = None
    priority: int = 0
    knobs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.query, Query):
            raise TypeError(f"query must be a Query, got {type(self.query).__name__}")
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 1:
            raise ValueError(f"k must be a positive integer, got {self.k!r}")
        if self.deadline_seconds is not None and (
            isinstance(self.deadline_seconds, bool)
            or not isinstance(self.deadline_seconds, (int, float))
        ):
            raise TypeError("deadline_seconds must be a number or None")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ValueError(f"priority must be an integer, got {self.priority!r}")
        if not isinstance(self.knobs, Mapping):
            raise TypeError("knobs must be a mapping")

    @property
    def expired(self) -> bool:
        """Whether the request arrived with a non-positive planning budget."""
        return self.deadline_seconds is not None and self.deadline_seconds <= 0

    # ------------------------------------------------------------------ #
    # Wire format (HTTP gateway)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """JSON-safe dict form (see :mod:`repro.server.wire`)."""
        from repro.server.wire import plan_request_to_json_dict

        return plan_request_to_json_dict(self)

    @classmethod
    def from_json_dict(cls, payload: object, query_resolver=None) -> "PlanRequest":
        """Decode a wire payload; raises ``WireFormatError`` on bad input.

        ``query_resolver`` maps a by-name ``query`` field (a string) to a
        workload :class:`Query`.
        """
        from repro.server.wire import plan_request_from_json_dict

        return plan_request_from_json_dict(payload, query_resolver=query_resolver)


@dataclass
class PlanResult:
    """What every planner returns for one :class:`PlanRequest`.

    Attributes:
        plans: Up to ``k`` complete plans.  Planners with a cost model sort
            them by ascending predicted cost/latency.
        predicted_latencies: The planner's score for each plan — predicted
            latency for learned planners, model cost for classical ones, and
            ``nan`` for samplers that score nothing.
        planning_seconds: Wall-clock planning time.
        planner_name: Registry identity of the planner that produced this
            result (``"beam"``, ``"dp"``, ``"postgres"``, ...).
        states_expanded: Search states expanded (0 for non-search planners).
        plans_scored: Distinct candidate plans scored (0 when not applicable).
        deadline_exceeded: True when the planner cut its search short because
            the request's planning budget ran out; the result may then hold
            fewer than ``k`` plans (possibly none).
        cacheable: Whether serving layers may memoise this result for
            identical future requests.  Stochastic planners (samplers, ε-greedy
            exploration) set this False so caches never freeze a random draw.
        extra: Planner-specific extras (e.g. Bao's chosen ``arm_index``).
    """

    plans: list[PlanNode]
    predicted_latencies: list[float]
    planning_seconds: float = 0.0
    states_expanded: int = 0
    plans_scored: int = 0
    planner_name: str = ""
    deadline_exceeded: bool = False
    cacheable: bool = True
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def best_plan(self) -> PlanNode:
        """The first (predicted-best) plan."""
        if not self.plans:
            raise PlanningError(
                "result holds no plans"
                + (" (planning budget exhausted)" if self.deadline_exceeded else "")
            )
        return self.plans[0]

    @property
    def best_predicted_latency(self) -> float:
        """The predicted cost/latency of :attr:`best_plan`."""
        if not self.predicted_latencies:
            raise PlanningError("result holds no predictions")
        return self.predicted_latencies[0]

    @property
    def predicted_costs(self) -> list[float]:
        """Alias for :attr:`predicted_latencies` (classical planners emit costs)."""
        return self.predicted_latencies

    # ------------------------------------------------------------------ #
    # Wire format (HTTP gateway)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> dict:
        """JSON-safe dict form (see :mod:`repro.server.wire`)."""
        from repro.server.wire import plan_result_to_json_dict

        return plan_result_to_json_dict(self)

    @classmethod
    def from_json_dict(cls, payload: object) -> "PlanResult":
        """Decode a wire payload; raises ``WireFormatError`` on bad input."""
        from repro.server.wire import plan_result_from_json_dict

        return plan_result_from_json_dict(payload)
